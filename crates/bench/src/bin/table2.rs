//! Table 2: execution times using 8 threads under the four
//! configurations (Global / Coarse k=0 / Fine+Coarse k=9 / TL2 STM).
//!
//! ```text
//! cargo run -p bench --release --bin table2
//! REPRO_SCALE=0.2 cargo run -p bench --release --bin table2   # quicker
//! ```

use bench::harness::{ops, run, Config};
use workloads::{micro, stamp, Contention, RunSpec};

const THREADS: usize = 8;
const NOPK: i64 = 200;

fn specs() -> Vec<RunSpec> {
    let mut v = vec![
        stamp::genome(ops(4000), 60),
        stamp::vacation(ops(1500), 60),
        stamp::kmeans(ops(6000), 60),
        stamp::bayes(ops(2500), 120),
        stamp::labyrinth(ops(1200), 60),
    ];
    for c in [Contention::High, Contention::Low] {
        v.push(micro::hashtable(c, ops(6000), NOPK));
        v.push(micro::rbtree(c, ops(6000), NOPK));
        v.push(micro::list(c, ops(4000), NOPK));
        v.push(micro::hashtable2(c, ops(8000), NOPK));
        v.push(micro::th(c, ops(6000), NOPK));
    }
    v
}

fn main() {
    println!("Table 2: execution time (s) using {THREADS} threads");
    println!(
        "{:<18} {:>9} {:>12} {:>17} {:>9} {:>8}  (STM aborts/fallbacks)",
        "Program", "Global", "Coarse(k=0)", "Fine+Coarse(k=9)", "STM", "revalid"
    );
    println!("{}", "-".repeat(97));
    let mut degraded = Vec::new();
    for spec in specs() {
        let mut cells = Vec::new();
        let mut aborts = 0;
        let mut fallbacks = 0;
        let mut revalidations = 0;
        for config in Config::ALL {
            let out = run(&spec, config, THREADS);
            cells.push(out.seconds);
            if config == Config::Stm {
                aborts = out.aborts;
                fallbacks = out.fallbacks;
            }
            if config == Config::FineCoarse {
                // Lock batches re-planned because a fine descriptor
                // drifted while the thread waited — only the fine
                // column can revalidate.
                revalidations = out.degradation.lock_revalidations;
            }
            if !out.degradation.is_clean() {
                degraded.push((spec.name.clone(), config.label(), out.degradation));
            }
        }
        println!(
            "{:<18} {:>9.3} {:>12.3} {:>17.3} {:>9.3} {revalidations:>8}  ({aborts}/{fallbacks})",
            spec.name, cells[0], cells[1], cells[2], cells[3]
        );
    }
    for (name, label, report) in degraded {
        println!("  degraded: {name} [{label}]  {report}");
    }
    println!();
    println!("Expected shapes (paper §6.3): STAMP kernels gain nothing from");
    println!("multi-grain locks (coarse ≈ global, fine adds overhead); the");
    println!("STM loses where sections conflict structurally (vacation,");
    println!("hashtable-high, TH-high) and wins on low-contention micro-");
    println!("benchmarks and labyrinth; read/write coarse locks beat the");
    println!("global lock ~2x on -low settings; fine locks halve coarse on");
    println!("hashtable-2-high; TH beats global with either grain.");
}
