//! Scheme ablation: lock distribution when each component of the
//! product scheme `Σ_k × Σ≡ × Σ_ε` is disabled — the executable form of
//! the paper's claim that the framework is *parameterized* by the lock
//! scheme.
//!
//! ```text
//! cargo run -p bench --release --bin ablation
//! ```

use lockinfer::LockCounts;
use lockscheme::SchemeConfig;
use workloads::{micro, stamp, Contention};

type Variant = (&'static str, fn(&lir::Program) -> SchemeConfig);

fn main() {
    let mut specs = micro::all(Contention::Low, 10, 0);
    specs.extend(stamp::all(10, 0));
    let variants: [Variant; 5] = [
        ("full (k=9)", |p| SchemeConfig::full(9, p.elem_field_opt())),
        ("no effects", |p| SchemeConfig {
            use_eff: false,
            ..SchemeConfig::full(9, p.elem_field_opt())
        }),
        ("no expressions", |p| SchemeConfig {
            use_expr: false,
            ..SchemeConfig::full(9, p.elem_field_opt())
        }),
        ("no points-to", |p| SchemeConfig {
            use_pts: false,
            ..SchemeConfig::full(9, p.elem_field_opt())
        }),
        ("global only", |p| SchemeConfig {
            use_pts: false,
            use_expr: false,
            use_eff: false,
            ..SchemeConfig::full(0, p.elem_field_opt())
        }),
    ];
    println!("Scheme ablation: aggregated lock counts over micro + STAMP kernels");
    println!(
        "{:<16} {:>9} {:>9} {:>10} {:>10} {:>7}",
        "Scheme", "fine-ro", "fine-rw", "coarse-ro", "coarse-rw", "total"
    );
    for (label, cfg_of) in variants {
        let mut total = LockCounts::default();
        for spec in &specs {
            let p = lir::compile(&spec.source).unwrap();
            let pt = pointsto::PointsTo::analyze(&p);
            let analysis = lockinfer::analyze_program(&p, &pt, cfg_of(&p));
            total += analysis.lock_counts();
        }
        println!(
            "{:<16} {:>9} {:>9} {:>10} {:>10} {:>7}",
            label,
            total.fine_ro,
            total.fine_rw,
            total.coarse_ro,
            total.coarse_rw,
            total.total()
        );
    }
}
