//! `trace-dump` — record, validate, profile, and replay execution
//! traces of the evaluation workloads.
//!
//! ```text
//! trace-dump record <workload> [--mode M] [--k N] [--threads N] [--ops N]
//!                              [--contention low|high] [--faults]
//!                              [--sentinel] [--weaken S:I]
//!                              [--sentinel-preset default|sampled-production]
//!                              [--metrics FILE] [--out FILE]
//! trace-dump validate <trace.json>
//! trace-dump profile  <trace.json>
//! trace-dump replay   <trace.json>
//! trace-dump quarantine <trace.json>
//! trace-dump metrics <trace.json> [--format json|prometheus|speedscope]
//!                                 [--out FILE]
//! trace-dump adapt   <workload> [--mode M] [--k N] [--threads N] [--ops N]
//!                               [--contention low|high] [--json FILE]
//! trace-dump sched   <workload> [--mode M] [--k N] [--threads N] [--ops N]
//!                               [--contention low|high] [--json FILE]
//! trace-dump reinfer <workload> [--mode M] [--k N] [--threads N] [--ops N]
//!                               [--contention low|high] [--weaken S:I]
//!                               [--json FILE]
//! ```
//!
//! * `record` runs a named workload (`list`, `hashtable`, `hashtable2`,
//!   `rbtree`, `th`, `genome`, `vacation`, `kmeans`) under the
//!   deterministic virtual-time scheduler with event tracing on, prints
//!   the lockset-validation verdict and per-section profiles, and —
//!   with `--out` — writes the self-describing trace as canonical JSON.
//!   `--metrics FILE` arms the run with a live [`obs::Registry`]
//!   (through [`atomic_lock_inference::Pipeline`]) and writes its
//!   snapshot as canonical metrics JSON; the recorded trace is
//!   byte-identical either way.
//! * `validate` re-checks a trace file against the Eraser-style
//!   lockset discipline (every in-section access licensed by a held
//!   lock at the right mode).
//! * `profile` prints per-section contention/hold-time histograms.
//! * `replay` re-executes the run embedded in a trace file and
//!   verifies the fresh digest matches, byte for byte.
//! * `quarantine` reconstructs the online sentinel's quarantine ladder
//!   (DESIGN.md §5.5) from the trace's `qr` events: every demotion and
//!   heal in epoch order, sections still serving probation at trace
//!   end, and half-open transitions dropped by the truncation guard.
//!   `record --sentinel` arms the sentinel for the run; `--weaken S:I`
//!   drops inferred lock `I` from section `S` to provoke it.
//! * `metrics` derives the full `ali_*` metric vocabulary from a trace
//!   file (DESIGN.md §5.9) — a pure function of the trace bytes — and
//!   renders it as canonical JSON (default), Prometheus text
//!   exposition, or a speedscope flamegraph of per-section wait/hold.
//! * `adapt` runs the profile-guided adaptation loop (DESIGN.md §5.4):
//!   record a baseline, derive per-section configuration candidates
//!   from the corrected wait/hold profiles, replay each candidate on
//!   the same deterministic schedule, and report whether any override
//!   reduces total virtual-time wait. Exits nonzero if the selected
//!   candidate fails the `adapted wait <= baseline wait` invariant.
//! * `sched` runs the wake-policy evaluation loop (DESIGN.md §5.6):
//!   record a FIFO baseline, flag convoy-prone sections from the
//!   wait/hold profiles, re-run every contention-aware wake policy on
//!   the same deterministic schedule, and report whether any policy
//!   reduces total virtual-time wait. Exits nonzero if a selected
//!   policy fails the `steered wait <= baseline wait` invariant.
//! * `reinfer` runs quarantine-aware re-inference (DESIGN.md §5.8):
//!   record a sentinel-armed baseline (with `--weaken S:I` seeding the
//!   modeled inference bug), diagnose the canonical violation ledger,
//!   replay every repair candidate and the global-demotion reference
//!   on the same deterministic schedule, and print the repair ledger —
//!   per offending section: the diagnosis-tagged candidates, their
//!   cleanliness and cost, and which (if any) was admitted. When a
//!   fault was seeded, exits nonzero unless at least one section heals
//!   onto an admitted non-global repair that is lockset-clean,
//!   strictly cheaper than the demotion, never re-offends after the
//!   `ri`-accepted event, and replays to the same digest.
//!
//! Exit status is nonzero on a validation failure or digest mismatch,
//! so all subcommands double as CI checks.

use atomic_lock_inference::{adapt, reinfer, replay, Pipeline};
use bench::cli::{self, Flags, RunArgs};
use interp::{FaultPlan, SentinelConfig};
use lockinfer::adapt::AdaptPolicy;
use std::process::ExitCode;
use std::sync::Arc;
use workloads::Contention;

fn usage() -> ExitCode {
    eprintln!(
        "usage: trace-dump record <workload> [--mode global|multigrain|stm|validate] \
         [--k N] [--threads N] [--ops N] [--contention low|high] [--faults] \
         [--sentinel] [--weaken S:I] \
         [--sentinel-preset default|sampled-production] [--metrics FILE] [--out FILE]\n\
         \x20      trace-dump validate <trace.json>\n\
         \x20      trace-dump profile  <trace.json>\n\
         \x20      trace-dump replay   <trace.json>\n\
         \x20      trace-dump quarantine <trace.json>\n\
         \x20      trace-dump metrics  <trace.json> [--format json|prometheus|speedscope] \
         [--out FILE]\n\
         \x20      trace-dump adapt    <workload> [--mode M] [--k N] [--threads N] \
         [--ops N] [--contention low|high] [--json FILE]\n\
         \x20      trace-dump sched    <workload> [--mode M] [--k N] [--threads N] \
         [--ops N] [--contention low|high] [--json FILE]\n\
         \x20      trace-dump reinfer  <workload> [--mode M] [--k N] [--threads N] \
         [--ops N] [--contention low|high] [--weaken S:I] [--json FILE]\n\
         workloads: {}",
        cli::WORKLOADS
    );
    ExitCode::from(2)
}

fn report(t: &trace::Trace) -> bool {
    let by_kind = t
        .counts()
        .into_iter()
        .map(|(k, n)| format!("{k}:{n}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!(
        "trace: {} events ({by_kind}), {} allocs, dropped={}",
        t.events.len(),
        t.allocs.len(),
        t.dropped
    );
    println!("digest: {}", t.digest());
    print!("{}", trace::profile::render(&trace::profile::profile(t)));
    let qh = trace::quarantine_history(t);
    if !qh.transitions.is_empty() || !qh.open.is_empty() || qh.suppressed > 0 {
        print!("{}", trace::quarantine::render(&qh));
    }
    match trace::validate(t) {
        Ok(v) => {
            println!(
                "lockset validation: checked={} exempt={} violations={}{}",
                v.checked,
                v.exempt,
                v.violations.len(),
                if v.crashed.is_empty() {
                    String::new()
                } else {
                    format!(" (crashed threads: {:?})", v.crashed)
                }
            );
            for viol in &v.violations {
                println!("  VIOLATION {viol}");
            }
            v.passed()
        }
        Err(e) => {
            println!("lockset validation: SKIPPED — {e}");
            false
        }
    }
}

fn cmd_record(args: &[String]) -> Result<ExitCode, String> {
    let name = args.first().ok_or("record: missing workload name")?;
    let mut ra = RunArgs::new(4, Contention::Low);
    let mut faults = None;
    let mut sentinel = false;
    let mut preset = SentinelConfig::default();
    let mut weaken = None;
    let mut metrics = None;
    let mut out = None;
    let mut f = Flags::new("record", &args[1..]);
    while let Some(flag) = f.next() {
        if ra.apply(flag, &mut f)? {
            continue;
        }
        match flag {
            "--faults" => {
                faults = Some(
                    FaultPlan::new(0xC405)
                        .with_stm_aborts(30)
                        .with_stalls(100, 400)
                        .with_wakeup_delays(100, 200),
                );
            }
            "--sentinel" => sentinel = true,
            "--sentinel-preset" => {
                preset = match f.value(flag, "default|sampled-production")? {
                    "default" => SentinelConfig::default(),
                    "sampled-production" => SentinelConfig::sampled_production(),
                    other => return Err(format!("record: unknown sentinel preset `{other}`")),
                };
                sentinel = true;
            }
            "--weaken" => {
                weaken = Some(cli::parse_weaken(f.value(flag, "SECTION:INDEX")?)?);
                sentinel = true;
            }
            "--metrics" => metrics = Some(f.value(flag, "a path")?.to_string()),
            "--out" => out = Some(f.value(flag, "a path")?.to_string()),
            other => return Err(f.unknown(other)),
        }
    }
    let mut cfg = ra.config("record", name)?;
    cfg.faults = faults;
    cfg.sentinel = sentinel.then_some(preset);
    cfg.weaken = weaken;
    // A metrics-armed run goes through the Pipeline so the live
    // registry rides along; the recorded trace is byte-identical to
    // the plain path either way.
    let registry = metrics.as_ref().map(|_| Arc::new(obs::Registry::new()));
    let rec = match &registry {
        Some(reg) => Pipeline::new(cfg)
            .analysis_threads(0)
            .metrics(Arc::clone(reg))
            .record()?,
        None => replay::record(&cfg)?,
    };
    println!(
        "{name} mode={:?} k={} threads={} ops={}: makespan={} ticks{}",
        ra.mode,
        ra.k,
        ra.threads,
        ra.ops,
        rec.outcome.makespan,
        match &rec.outcome.error {
            Some(e) => format!(" ERROR: {e}"),
            None => String::new(),
        }
    );
    let ok = report(&rec.trace);
    if let (Some(path), Some(reg)) = (&metrics, &registry) {
        cli::write_text(path, &reg.snapshot().to_json())?;
    }
    if let Some(path) = out {
        cli::write_text(&path, &rec.trace.to_json())?;
    }
    Ok(if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_metrics(args: &[String]) -> Result<ExitCode, String> {
    let path = args.first().ok_or("metrics: missing trace file")?;
    let mut format = "json".to_string();
    let mut out = None;
    let mut f = Flags::new("metrics", &args[1..]);
    while let Some(flag) = f.next() {
        match flag {
            "--format" => {
                format = match f.value(flag, "json|prometheus|speedscope")? {
                    fmt @ ("json" | "prometheus" | "speedscope") => fmt.to_string(),
                    other => return Err(format!("metrics: unknown format `{other}`")),
                };
            }
            "--out" => out = Some(f.value(flag, "a path")?.to_string()),
            other => return Err(f.unknown(other)),
        }
    }
    let t = cli::load_trace(path)?;
    let rendered = match format.as_str() {
        "prometheus" => obs::export::prometheus(&obs::from_trace(&t)),
        "speedscope" => obs::export::speedscope(&t),
        _ => obs::from_trace(&t).to_json(),
    };
    match out {
        Some(p) => cli::write_text(&p, &rendered)?,
        None => {
            print!("{rendered}");
            if !rendered.ends_with('\n') {
                println!();
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_adapt(args: &[String]) -> Result<ExitCode, String> {
    let name = args.first().ok_or("adapt: missing workload name")?;
    let mut ra = RunArgs::new(8, Contention::High);
    let mut json = None;
    let mut f = Flags::new("adapt", &args[1..]);
    while let Some(flag) = f.next() {
        if ra.apply(flag, &mut f)? {
            continue;
        }
        match flag {
            "--json" => json = Some(f.value(flag, "a path")?.to_string()),
            other => return Err(f.unknown(other)),
        }
    }
    let cfg = ra.config("adapt", name)?;
    let run = adapt::adapt(&cfg, &AdaptPolicy::default(), 0)?;
    let b = run.report.baseline;
    println!(
        "{name} mode={:?} k={} threads={} ops={}",
        ra.mode, ra.k, ra.threads, ra.ops
    );
    println!(
        "baseline:    wait={} hold={} reval={} makespan={}",
        b.total_wait, b.total_hold, b.total_revalidations, b.makespan
    );
    for (i, d) in run.report.candidates.iter().enumerate() {
        let c = d.cost;
        println!(
            "candidate {i}: section={} {} ({}) wait={} hold={} reval={} makespan={}",
            d.candidate.section,
            d.candidate.adjustment.tag(),
            d.candidate.trigger.tag(),
            c.total_wait,
            c.total_hold,
            c.total_revalidations,
            c.makespan
        );
    }
    let adapted_wait = match run.report.winner() {
        Some(w) => {
            let saved = b.total_wait - w.cost.total_wait;
            println!(
                "selected: section {} {} — wait {} vs baseline {} (-{:.1}%)",
                w.candidate.section,
                w.candidate.adjustment.tag(),
                w.cost.total_wait,
                b.total_wait,
                100.0 * saved as f64 / (b.total_wait as f64).max(1.0)
            );
            w.cost.total_wait
        }
        None => {
            println!("selected: none (uniform configuration stands)");
            b.total_wait
        }
    };
    if let Some(path) = json {
        cli::write_text(&path, &run.report.to_json())?;
    }
    let ok = adapted_wait <= b.total_wait;
    println!(
        "adapt check: adapted wait {adapted_wait} <= baseline wait {}: {}",
        b.total_wait,
        if ok { "OK" } else { "FAIL" }
    );
    Ok(if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_sched(args: &[String]) -> Result<ExitCode, String> {
    let name = args.first().ok_or("sched: missing workload name")?;
    let mut ra = RunArgs::new(8, Contention::High);
    let mut json = None;
    let mut f = Flags::new("sched", &args[1..]);
    while let Some(flag) = f.next() {
        if ra.apply(flag, &mut f)? {
            continue;
        }
        match flag {
            "--json" => json = Some(f.value(flag, "a path")?.to_string()),
            other => return Err(f.unknown(other)),
        }
    }
    let cfg = ra.config("sched", name)?;
    let run = atomic_lock_inference::sched::evaluate(
        &cfg,
        &atomic_lock_inference::sched::ConvoyPolicy::default(),
        0,
    )?;
    let b = run.report.baseline;
    println!(
        "{name} mode={:?} k={} threads={} ops={}",
        ra.mode, ra.k, ra.threads, ra.ops
    );
    println!(
        "baseline (fifo): wait={} hold={} makespan={}",
        b.total_wait, b.total_hold, b.makespan
    );
    for f in &run.report.convoys {
        println!(
            "convoy: section={} depth={:.1} hold={:.1} pressure={:.1}",
            f.section, f.depth, f.mean_hold, f.pressure
        );
    }
    for o in &run.report.evaluated {
        println!(
            "policy {:<6}: wait={} hold={} makespan={}",
            o.policy.tag(),
            o.cost.total_wait,
            o.cost.total_hold,
            o.cost.makespan
        );
    }
    let best_wait = match run.report.winner() {
        Some(w) => {
            let saved = b.total_wait - w.cost.total_wait;
            println!(
                "selected: {} — wait {} vs fifo {} (-{:.1}%)",
                w.policy.tag(),
                w.cost.total_wait,
                b.total_wait,
                100.0 * saved as f64 / (b.total_wait as f64).max(1.0)
            );
            w.cost.total_wait
        }
        None => {
            println!("selected: none (fifo order stands)");
            b.total_wait
        }
    };
    if let Some(path) = json {
        cli::write_text(&path, &run.report.to_json())?;
    }
    let ok = best_wait <= b.total_wait;
    println!(
        "sched check: steered wait {best_wait} <= baseline wait {}: {}",
        b.total_wait,
        if ok { "OK" } else { "FAIL" }
    );
    Ok(if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_reinfer(args: &[String]) -> Result<ExitCode, String> {
    let name = args.first().ok_or("reinfer: missing workload name")?;
    let mut ra = RunArgs::new(8, Contention::High);
    let mut weaken = None;
    let mut json = None;
    let mut f = Flags::new("reinfer", &args[1..]);
    while let Some(flag) = f.next() {
        if ra.apply(flag, &mut f)? {
            continue;
        }
        match flag {
            "--weaken" => weaken = Some(cli::parse_weaken(f.value(flag, "SECTION:INDEX")?)?),
            "--json" => json = Some(f.value(flag, "a path")?.to_string()),
            other => return Err(f.unknown(other)),
        }
    }
    let mut cfg = ra.config("reinfer", name)?;
    cfg.sentinel = Some(SentinelConfig::default());
    cfg.weaken = weaken;
    let run = reinfer::reinfer(&cfg, 0)?;
    let b = run.report.baseline;
    println!(
        "{name} mode={:?} k={} threads={} ops={}",
        ra.mode, ra.k, ra.threads, ra.ops
    );
    println!(
        "baseline (armed{}): wait={} hold={} makespan={}",
        match &cfg.weaken {
            Some(w) => format!(", weakened {}:{}", w.section, w.drop_index),
            None => String::new(),
        },
        b.total_wait,
        b.total_hold,
        b.makespan
    );
    for sec in &run.report.sections {
        println!(
            "section {}: {} violations; demoted-to-global wait={} makespan={}",
            sec.section, sec.violations, sec.demoted.total_wait, sec.demoted.makespan
        );
        for (i, d) in sec.candidates.iter().enumerate() {
            let c = &d.candidate.config;
            println!(
                "  candidate {i}: {} ({}) k={} expr={} pts={} eff={} clean={} wait={} makespan={}",
                d.candidate.repair.tag(),
                d.candidate.diagnosis.tag(),
                c.k,
                c.use_expr,
                c.use_pts,
                c.use_eff,
                d.clean,
                d.cost.total_wait,
                d.cost.makespan
            );
        }
        match sec.winner() {
            Some(w) => {
                let saved = sec.demoted.total_wait - w.cost.total_wait;
                println!(
                    "  admitted: {} — wait {} vs demoted {} (-{:.1}%)",
                    w.candidate.repair.tag(),
                    w.cost.total_wait,
                    sec.demoted.total_wait,
                    100.0 * saved as f64 / (sec.demoted.total_wait as f64).max(1.0)
                );
            }
            None => println!("  admitted: none (global demotion stands)"),
        }
    }
    if let Some(path) = json {
        cli::write_text(&path, &run.report.to_json())?;
    }
    let ok = match (&cfg.weaken, &run.healed) {
        // No fault seeded: a quiet ledger is the expected outcome.
        (None, _) => {
            if run.report.sections.is_empty() {
                println!("reinfer check: clean armed run, nothing to repair: OK");
            } else {
                println!("reinfer check: violations on an unweakened run — see ledger above");
            }
            run.report.sections.iter().all(|s| s.winner().is_some())
                || run.report.sections.is_empty()
        }
        (Some(_), None) => {
            println!("reinfer check: no repair admitted for the seeded fault: FAIL");
            false
        }
        (Some(_), Some(healed)) => {
            let admitted = run.report.admitted();
            let nonglobal = run.report.sections.iter().all(|s| match s.winner() {
                Some(w) => !w.candidate.config.is_trivially_sound(),
                None => true,
            });
            // Zero post-repair violations: once a section's repair is
            // accepted (`ri` event), it must never demote again.
            let quiet = admitted.iter().all(|&(section, _)| {
                let events = &healed.trace.events;
                match events.iter().rposition(|e| {
                    matches!(e.kind,
                        trace::EventKind::Reinfer { section: s, accepted: true, .. } if s == section)
                }) {
                    Some(at) => !events[at..].iter().any(|e| {
                        matches!(e.kind,
                            trace::EventKind::Quarantine { section: s, healed: false, .. } if s == section)
                    }),
                    None => false,
                }
            });
            let replayed = replay::replay(&healed.trace)
                .map(|again| again.trace.digest() == healed.trace.digest())
                .unwrap_or(false);
            println!(
                "healed: {} section(s) re-admitted, makespan={} ticks, digest {}",
                admitted.len(),
                healed.outcome.makespan,
                healed.trace.digest()
            );
            println!(
                "reinfer check: admitted={} nonglobal={} post-repair-quiet={} replay={}: {}",
                !admitted.is_empty(),
                nonglobal,
                quiet,
                replayed,
                if !admitted.is_empty() && nonglobal && quiet && replayed {
                    "OK"
                } else {
                    "FAIL"
                }
            );
            !admitted.is_empty() && nonglobal && quiet && replayed
        }
    };
    Ok(if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_replay(path: &str) -> Result<ExitCode, String> {
    let t = cli::load_trace(path)?;
    let rec = replay::replay(&t)?;
    let (orig, fresh) = (t.digest(), rec.trace.digest());
    println!("recorded digest: {orig}");
    println!("replayed digest: {fresh}");
    if orig == fresh {
        println!("replay: DETERMINISTIC");
        Ok(ExitCode::SUCCESS)
    } else {
        println!("replay: MISMATCH");
        Ok(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let r = match args.split_first() {
        Some((cmd, rest)) => match (cmd.as_str(), rest) {
            ("record", rest) => cmd_record(rest),
            ("validate", [path]) => cli::load_trace(path).map(|t| {
                if report(&t) {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }),
            ("profile", [path]) => cli::load_trace(path).map(|t| {
                print!("{}", trace::profile::render(&trace::profile::profile(&t)));
                ExitCode::SUCCESS
            }),
            ("replay", [path]) => cmd_replay(path),
            ("quarantine", [path]) => cli::load_trace(path).map(|t| {
                print!(
                    "{}",
                    trace::quarantine::render(&trace::quarantine_history(&t))
                );
                ExitCode::SUCCESS
            }),
            ("metrics", rest) => cmd_metrics(rest),
            ("adapt", rest) => cmd_adapt(rest),
            ("sched", rest) => cmd_sched(rest),
            ("reinfer", rest) => cmd_reinfer(rest),
            _ => return usage(),
        },
        None => return usage(),
    };
    r.unwrap_or_else(|e| {
        eprintln!("trace-dump: {e}");
        ExitCode::from(2)
    })
}
