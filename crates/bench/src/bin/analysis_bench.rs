//! `analysis-bench` — tracked throughput benchmark for the lock
//! inference engine.
//!
//! For each synthetic tier of [`workloads::scale`] it times three
//! solvers over the *same* compiled program and points-to results:
//!
//! * `reference` — the retained naive per-section engine
//!   ([`lockinfer::reference`]), the "before" baseline;
//! * `optimized` — the hash-consed/bitset/summary-cached engine,
//!   single-threaded;
//! * `parallel` — the same engine with one worker per core.
//!
//! All three must agree exactly on every section's lock set (checked on
//! every run), and the optimized engine's work counters are recorded
//! alongside the wall times.
//!
//! ```text
//! cargo run -p bench --release --bin analysis-bench -- [--smoke]
//!     [--out FILE] [--check FILE]
//! ```
//!
//! `--smoke` runs only the smallest tier (for CI). `--out` writes the
//! JSON report (default `BENCH_analysis.json` when omitted along with
//! `--check`). `--check FILE` compares against a committed report and
//! exits non-zero if any measured tier's optimized wall time regressed
//! more than 2× — a coarse gate that survives machine-to-machine noise
//! but catches real algorithmic regressions.

use lockscheme::SchemeConfig;
use std::fmt::Write as _;
use std::time::Instant;
use workloads::scale;

/// Allowed slowdown versus the committed baseline before `--check`
/// fails.
const CHECK_FACTOR: f64 = 2.0;

struct TierReport {
    name: String,
    kloc: f64,
    sections: usize,
    functions: usize,
    reference_ms: f64,
    optimized_ms: f64,
    parallel_ms: f64,
    stats: lockinfer::AnalysisStats,
}

fn best_of<F: FnMut() -> f64>(iters: usize, mut f: F) -> f64 {
    (0..iters).map(|_| f()).fold(f64::INFINITY, f64::min)
}

fn run_tier(name: &str, p: scale::ScaleParams, iters: usize) -> TierReport {
    let spec = scale::generate(name, p);
    let program = lir::compile(&spec.source).unwrap_or_else(|e| panic!("{name}: {e}"));
    let pt = pointsto::PointsTo::analyze(&program);
    let cfg = SchemeConfig::full(3, program.elem_field_opt());
    let lib = lockinfer::library::LibrarySpec::new();

    let reference_ms = best_of(iters, || {
        let t = Instant::now();
        std::hint::black_box(lockinfer::analyze_program_reference(
            &program, &pt, cfg, &lib,
        ));
        t.elapsed().as_secs_f64() * 1e3
    });
    let optimized_ms = best_of(iters, || {
        let t = Instant::now();
        std::hint::black_box(lockinfer::analyze_program_with_opts(
            &program, &pt, cfg, &lib, 1,
        ));
        t.elapsed().as_secs_f64() * 1e3
    });
    let parallel_ms = best_of(iters, || {
        let t = Instant::now();
        std::hint::black_box(lockinfer::analyze_program_with_opts(
            &program, &pt, cfg, &lib, 0,
        ));
        t.elapsed().as_secs_f64() * 1e3
    });

    // Correctness gate: all three solvers agree exactly.
    let refr = lockinfer::analyze_program_reference(&program, &pt, cfg, &lib);
    let seq = lockinfer::analyze_program_with_opts(&program, &pt, cfg, &lib, 1);
    let par = lockinfer::analyze_program_with_opts(&program, &pt, cfg, &lib, 0);
    assert_eq!(refr.len(), seq.sections.len());
    for (r, s) in refr.iter().zip(&seq.sections) {
        assert_eq!(r.id, s.id, "{name}: section order");
        assert_eq!(
            r.locks, s.locks,
            "{name}: reference vs optimized, section {:?}",
            r.id
        );
    }
    for (s, q) in seq.sections.iter().zip(&par.sections) {
        assert_eq!(
            s.locks, q.locks,
            "{name}: sequential vs parallel, section {:?}",
            s.id
        );
    }

    TierReport {
        name: name.to_owned(),
        kloc: spec.kloc(),
        sections: refr.len(),
        functions: program.functions.len(),
        reference_ms,
        optimized_ms,
        parallel_ms,
        stats: par.stats,
    }
}

fn encode(tiers: &[TierReport]) -> String {
    let mut out = String::new();
    out.push_str("{\"format\":\"ali-analysis-bench-v1\",\"tiers\":[");
    for (i, t) in tiers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let s = &t.stats;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"kloc\":{:.1},\"sections\":{},\"functions\":{},\
             \"reference_ms\":{:.3},\"optimized_ms\":{:.3},\"parallel_ms\":{:.3},\
             \"speedup_opt\":{:.2},\"speedup_par\":{:.2},\
             \"worklist_pops\":{},\"facts_inserted\":{},\"peak_point_locks\":{},\
             \"summary_cache_hits\":{},\"summary_cache_misses\":{},\
             \"summary_functions\":{},\"summary_queries\":{},\
             \"interner_locks\":{},\"interner_paths\":{},\"threads\":{}}}",
            t.name,
            t.kloc,
            t.sections,
            t.functions,
            t.reference_ms,
            t.optimized_ms,
            t.parallel_ms,
            t.reference_ms / t.optimized_ms,
            t.reference_ms / t.parallel_ms,
            s.worklist_pops,
            s.facts_inserted,
            s.peak_point_locks,
            s.summary_cache_hits,
            s.summary_cache_misses,
            s.summary_functions,
            s.summary_queries,
            s.interner_locks,
            s.interner_paths,
            s.threads,
        );
    }
    out.push_str("]}\n");
    out
}

/// Pulls `(name, optimized_ms)` pairs out of a committed report with a
/// plain scan — the encoding is canonical, so this stays trivial.
fn extract_baseline(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(i) = rest.find("\"name\":\"") {
        rest = &rest[i + 8..];
        let Some(end) = rest.find('"') else { break };
        let name = rest[..end].to_owned();
        let Some(j) = rest.find("\"optimized_ms\":") else {
            break;
        };
        rest = &rest[j + 15..];
        let val: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        if let Ok(ms) = val.parse::<f64>() {
            out.push((name, ms));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_val = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag_val("--out");
    let check_path = flag_val("--check");

    let mut tiers = scale::tiers();
    if smoke {
        tiers.truncate(1);
    }
    let iters = if smoke { 2 } else { 3 };

    println!("analysis-bench: lock-inference engine throughput");
    println!(
        "{:<13} {:>6} {:>5} {:>12} {:>12} {:>12} {:>7} {:>7}",
        "tier", "KLOC", "secs", "naive (ms)", "opt (ms)", "par (ms)", "x-opt", "x-par"
    );
    let reports: Vec<TierReport> = tiers
        .into_iter()
        .map(|(name, p)| {
            let r = run_tier(name, p, iters);
            println!(
                "{:<13} {:>6.1} {:>5} {:>12.2} {:>12.2} {:>12.2} {:>7.2} {:>7.2}",
                r.name,
                r.kloc,
                r.sections,
                r.reference_ms,
                r.optimized_ms,
                r.parallel_ms,
                r.reference_ms / r.optimized_ms,
                r.reference_ms / r.parallel_ms,
            );
            r
        })
        .collect();
    let last = reports.last().expect("at least one tier");
    println!(
        "largest tier ({}): {:.2}x single-threaded, {:.2}x parallel over the naive engine",
        last.name,
        last.reference_ms / last.optimized_ms,
        last.reference_ms / last.parallel_ms,
    );

    if let Some(path) = &check_path {
        let committed =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("--check {path}: {e}"));
        let baseline = extract_baseline(&committed);
        let mut failed = false;
        for r in &reports {
            let Some((_, base_ms)) = baseline.iter().find(|(n, _)| *n == r.name) else {
                println!("check: tier {} absent from {path}, skipping", r.name);
                continue;
            };
            let limit = base_ms * CHECK_FACTOR;
            let verdict = if r.optimized_ms > limit {
                failed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "check: {} optimized {:.2} ms vs committed {:.2} ms (limit {:.2}) — {verdict}",
                r.name, r.optimized_ms, base_ms, limit
            );
        }
        if failed {
            eprintln!("analysis-bench: wall time regressed more than {CHECK_FACTOR}x");
            std::process::exit(1);
        }
    }

    let write_to = out_path.or_else(|| {
        if check_path.is_none() {
            Some("BENCH_analysis.json".to_owned())
        } else {
            None
        }
    });
    if let Some(path) = write_to {
        std::fs::write(&path, encode(&reports)).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }
}
