use lockscheme::SchemeConfig;
use std::time::Instant;
fn main() {
    let kloc: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    let k: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let spec = workloads::spec_like::generate("probe", kloc, 1000);
    let t = Instant::now();
    let program = lir::compile(&spec.source).unwrap();
    println!(
        "compile: {:?}, instrs={}",
        t.elapsed(),
        program.instr_count()
    );
    let t = Instant::now();
    let pt = pointsto::PointsTo::analyze(&program);
    println!("pointsto: {:?} classes={}", t.elapsed(), pt.n_classes());
    let t = Instant::now();
    let cfg = SchemeConfig::full(k, program.elem_field_opt());
    let analysis = lockinfer::analyze_program(&program, &pt, cfg);
    println!(
        "analysis k={k}: {:?} locks={}",
        t.elapsed(),
        analysis.lock_counts()
    );
}
