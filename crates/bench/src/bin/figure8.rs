//! Figure 8: execution times for rbtree, hashtable-2, TH, genome, and
//! kmeans using 1, 2, 4, and 8 threads.
//!
//! Total work is kept constant across thread counts (ops are divided
//! among threads), so ideal scaling halves the time at each step.
//!
//! ```text
//! cargo run -p bench --release --bin figure8
//! ```

use bench::harness::{ops, run, Config};
use workloads::{micro, stamp, Contention, RunSpec};

const NOPK: i64 = 200;

fn specs(threads: usize) -> Vec<RunSpec> {
    let per = |total: i64| (ops(total) / threads as i64).max(1);
    vec![
        micro::rbtree(Contention::Low, per(48000), NOPK),
        micro::rbtree(Contention::High, per(48000), NOPK),
        micro::hashtable2(Contention::High, per(64000), NOPK),
        micro::th(Contention::High, per(48000), NOPK),
        micro::th(Contention::Low, per(48000), NOPK),
        stamp::genome(per(32000), 60),
        stamp::kmeans(per(48000), 60),
    ]
}

fn main() {
    println!("Figure 8: execution time (s) at 1, 2, 4, 8 threads (fixed total work)");
    for config in Config::ALL {
        println!();
        println!("== {} ==", config.label());
        println!(
            "{:<18} {:>8} {:>8} {:>8} {:>8}",
            "Program", "1", "2", "4", "8"
        );
        let names: Vec<String> = specs(1).iter().map(|s| s.name.clone()).collect();
        let mut table: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
        let mut aborts = 0u64;
        let mut fallbacks = 0u64;
        for threads in [1usize, 2, 4, 8] {
            for (i, spec) in specs(threads).iter().enumerate() {
                let out = run(spec, config, threads);
                table[i].push(out.seconds);
                aborts += out.aborts;
                fallbacks += out.fallbacks;
            }
        }
        for (name, row) in names.iter().zip(&table) {
            println!(
                "{:<18} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                name, row[0], row[1], row[2], row[3]
            );
        }
        if config == Config::Stm {
            println!(
                "(STM totals across all runs: {aborts} aborts, {fallbacks} irrevocable fallbacks)"
            );
        }
    }
    println!();
    println!("Expected shapes (paper Figure 8): under coarse/fine locks,");
    println!("rbtree-low and TH scale with threads while genome does not;");
    println!("hashtable-2-high scales only with fine locks; the STM scales");
    println!("best on rbtree/hashtable-2 and collapses on TH-high at 8");
    println!("threads.");
}
