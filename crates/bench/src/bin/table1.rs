//! Table 1: program size, number of atomic sections, and analysis time
//! at k = 0 and k = 9.
//!
//! ```text
//! cargo run -p bench --release --bin table1
//! ```

use lockscheme::SchemeConfig;
use std::time::Instant;
use workloads::{micro, spec_like, stamp, Contention, RunSpec};

fn analysis_seconds(program: &lir::Program, k: usize) -> f64 {
    let start = Instant::now();
    // The paper's time includes the unification-based points-to
    // analysis plus the backward dataflow.
    let pt = pointsto::PointsTo::analyze(program);
    let cfg = SchemeConfig::full(k, program.elem_field_opt());
    let analysis = lockinfer::analyze_program(program, &pt, cfg);
    std::hint::black_box(analysis.lock_counts());
    start.elapsed().as_secs_f64()
}

fn row(spec: &RunSpec) {
    let program = lir::compile(&spec.source).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    let t0 = analysis_seconds(&program, 0);
    let t9 = analysis_seconds(&program, 9);
    println!(
        "{:<14} {:>8.1} {:>9} {:>12.3} {:>12.3}",
        spec.name,
        spec.kloc(),
        program.n_sections,
        t0,
        t9
    );
}

fn main() {
    println!("Table 1: program size and analysis time in seconds");
    println!(
        "{:<14} {:>8} {:>9} {:>12} {:>12}",
        "Program", "KLOC", "Sections", "k=0 (s)", "k=9 (s)"
    );
    println!("{}", "-".repeat(60));
    // SPECint-like synthetic programs at the paper's sizes (main
    // wrapped in one atomic section).
    for (i, (name, kloc)) in spec_like::table1_programs().into_iter().enumerate() {
        row(&spec_like::generate(name, kloc, 1000 + i as u64));
    }
    println!("{}", "-".repeat(60));
    for spec in stamp::all(10, 0) {
        row(&spec);
    }
    println!("{}", "-".repeat(60));
    for mut spec in micro::all(Contention::Low, 10, 0) {
        spec.name = spec.name.trim_end_matches("-low").to_owned();
        row(&spec);
    }
}
