//! `results_eval.txt`: the shared candidate-evaluation harness
//! (DESIGN.md §5.7) vs the legacy sequential candidate loop.
//!
//! For each generated `workloads::scale` program the bench runs the
//! same adaptation loop four ways:
//!
//! * **seq** — the pre-harness shape: invariant hoisting off (program
//!   compiled and points-to analyzed once per candidate), one eval
//!   worker, every candidate replayed exactly.
//! * **har8** — the full harness: invariants hoisted once, 8 eval
//!   workers, trace-analytic pruning (top-4 plus the estimator's
//!   family-diversity guard).
//! * an exact parallel run (hoist on, no pruning) whose report must be
//!   **byte-identical** to seq's — the harness's determinism claim.
//! * a beam-search run (same pruned pipeline) reported per row.
//!
//! The table reports wall-clock of the *candidate loop* (total minus
//! the baseline recording both paths share) and asserts, over the
//! scale rows in aggregate, the har8 loop is at least **3×** faster
//! than seq, that pruning never discarded the winner seq selected, and
//! that the pruned run selects that same winner.
//!
//! ```text
//! cargo run -p bench --release --bin eval-bench
//! ```
//!
//! `--smoke` swaps the table for the CI gate: one smaller scale twin,
//! byte-identical reports at eval thread counts 1/2/7 (adapt, with
//! pruning and beam search on, and sched), estimator soundness, and a
//! relaxed 2× speedup floor. `--check` is accepted for CI symmetry
//! with the other gates (the smoke assertions are always on).

use atomic_lock_inference::adapt::{adapt_with, AdaptRun};
use atomic_lock_inference::eval::EvalOptions;
use atomic_lock_inference::replay::{record, RunConfig};
use atomic_lock_inference::sched::{evaluate_with, ConvoyPolicy};
use interp::ExecMode;
use lockinfer::adapt::{AdaptPolicy, BeamPolicy};
use std::process::ExitCode;
use std::time::Instant;
use workloads::scale::{self, ScaleParams};
use workloads::RunSpec;

const TOP_K: usize = 4;

/// The legacy sequential candidate loop, as `EvalOptions`.
fn seq_opts() -> EvalOptions {
    EvalOptions {
        eval_threads: 1,
        hoist: false,
        ..EvalOptions::default()
    }
}

/// The full harness at `threads` eval workers with pruning on.
fn harness_opts(threads: usize) -> EvalOptions {
    EvalOptions {
        eval_threads: threads,
        prune: Some(TOP_K),
        ..EvalOptions::default()
    }
}

fn specs() -> Vec<RunSpec> {
    // Analysis-heavy shapes: deep call graphs with many sections make
    // per-candidate re-inference (what seq pays and the harness
    // hoists/memoizes) the dominant candidate cost, exactly the regime
    // the adaptive loop runs in on real programs.
    vec![
        scale::smoke(
            "scale-d4w6s12",
            ScaleParams {
                depth: 4,
                width: 6,
                sections: 12,
                stmts_per_fn: 10,
                seed: 7,
            },
            3,
        ),
        scale::smoke(
            "scale-d5w8s20",
            ScaleParams {
                depth: 5,
                width: 8,
                sections: 20,
                stmts_per_fn: 12,
                seed: 11,
            },
            3,
        ),
        scale::smoke(
            "scale-d4w10s24",
            ScaleParams {
                depth: 4,
                width: 10,
                sections: 24,
                stmts_per_fn: 8,
                seed: 23,
            },
            4,
        ),
    ]
}

struct Row {
    name: String,
    cands: usize,
    replayed: usize,
    /// Candidate-loop wall-clock, milliseconds.
    seq_ms: f64,
    har_ms: f64,
    sound: bool,
    winner: String,
    beam: String,
}

/// Runs one workload through every mode; `None` on harness error.
#[allow(clippy::too_many_lines)]
fn run_row(cfg: &RunConfig, policy: &AdaptPolicy) -> Result<Row, String> {
    // Baseline recording cost, shared by every mode: subtracted so the
    // table speaks about the candidate loop itself.
    let t = Instant::now();
    let _ = record(cfg)?;
    let base_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let seq = adapt_with(cfg, policy, &seq_opts())?;
    let seq_ms = (t.elapsed().as_secs_f64() * 1e3 - base_ms).max(0.1);

    // Determinism: the exact parallel harness must reproduce the
    // legacy report byte for byte.
    let exact_par = adapt_with(
        cfg,
        policy,
        &EvalOptions {
            eval_threads: 8,
            ..EvalOptions::default()
        },
    )?;
    if exact_par.report.to_json() != seq.report.to_json() {
        return Err("exact parallel report diverged from sequential".into());
    }

    let t = Instant::now();
    let pruned = adapt_with(cfg, policy, &harness_opts(8))?;
    let har_ms = (t.elapsed().as_secs_f64() * 1e3 - base_ms).max(0.1);

    // Estimator soundness: the pruned run must keep and select the
    // winner the exact run measured.
    let sound = match seq.report.selected {
        Some(i) => {
            pruned.report.candidates[i].status.is_replayed() && pruned.report.selected == Some(i)
        }
        None => pruned.report.selected.is_none(),
    };

    // Beam search over compound maps, through the same pruned pipeline.
    let beam_run = adapt_with(
        cfg,
        policy,
        &EvalOptions {
            beam: Some(BeamPolicy::default()),
            ..harness_opts(8)
        },
    )?;
    let beam = match &beam_run.beam {
        Some(b) => match b.winner() {
            Some(d) => format!(
                "{}/{} {}",
                b.evaluated.len(),
                b.selected.unwrap() + 1,
                d.candidate.tag()
            ),
            None => format!("{}/- singles stand", b.evaluated.len()),
        },
        None => "-".into(),
    };

    Ok(Row {
        name: cfg.name.clone(),
        cands: seq.report.candidates.len(),
        replayed: pruned
            .report
            .candidates
            .iter()
            .filter(|d| d.status.is_replayed())
            .count(),
        seq_ms,
        har_ms,
        sound,
        winner: seq
            .report
            .winner()
            .map(|d| d.candidate.adjustment.tag())
            .unwrap_or_else(|| "-".into()),
        beam,
    })
}

/// The CI smoke gate: one smaller scale twin; byte-identical adapt
/// reports (pruning and beam on) and sched reports at eval thread
/// counts 1/2/7; estimator soundness; a relaxed 2× candidate-loop
/// speedup floor.
fn smoke() -> ExitCode {
    let spec = scale::smoke(
        "eval-smoke",
        ScaleParams {
            depth: 4,
            width: 6,
            sections: 12,
            stmts_per_fn: 10,
            seed: 7,
        },
        3,
    );
    let cfg = RunConfig::from_spec(&spec, 9, ExecMode::MultiGrain, 8);
    let policy = AdaptPolicy::default();

    // Byte-identical adapt runs across eval thread counts, with the
    // whole feature surface on.
    let mut runs: Vec<AdaptRun> = Vec::new();
    for eval_threads in [1usize, 2, 7] {
        let o = EvalOptions {
            beam: Some(BeamPolicy::default()),
            ..harness_opts(eval_threads)
        };
        match adapt_with(&cfg, &policy, &o) {
            Ok(r) => runs.push(r),
            Err(e) => {
                println!("EVAL SMOKE: FAIL ({eval_threads} eval threads: {e})");
                return ExitCode::FAILURE;
            }
        }
    }
    let first = &runs[0];
    for r in &runs[1..] {
        let same_adapted = match (&r.adapted, &first.adapted) {
            (Some(a), Some(b)) => a.trace.digest() == b.trace.digest(),
            (None, None) => true,
            _ => false,
        };
        if r.report.to_json() != first.report.to_json()
            || r.beam.as_ref().map(|b| b.to_json()) != first.beam.as_ref().map(|b| b.to_json())
            || r.baseline.trace.digest() != first.baseline.trace.digest()
            || !same_adapted
        {
            println!("EVAL SMOKE: FAIL (adapt outcome diverged across eval thread counts)");
            return ExitCode::FAILURE;
        }
    }

    // Sched harness: same determinism claim.
    let convoy = ConvoyPolicy::default();
    let mut sruns = Vec::new();
    for eval_threads in [1usize, 7] {
        let o = EvalOptions {
            eval_threads,
            ..EvalOptions::default()
        };
        match evaluate_with(&cfg, &convoy, &o) {
            Ok(r) => sruns.push(r),
            Err(e) => {
                println!("EVAL SMOKE: FAIL (sched, {eval_threads} eval threads: {e})");
                return ExitCode::FAILURE;
            }
        }
    }
    if sruns[0].report.to_json() != sruns[1].report.to_json() {
        println!("EVAL SMOKE: FAIL (sched report diverged across eval thread counts)");
        return ExitCode::FAILURE;
    }

    // Estimator soundness against the exact evaluation.
    let exact = match adapt_with(&cfg, &policy, &EvalOptions::default()) {
        Ok(r) => r,
        Err(e) => {
            println!("EVAL SMOKE: FAIL (exact run: {e})");
            return ExitCode::FAILURE;
        }
    };
    let sound = match exact.report.selected {
        Some(i) => {
            first.report.candidates[i].status.is_replayed() && first.report.selected == Some(i)
        }
        None => first.report.selected.is_none(),
    };
    if !sound {
        println!("EVAL SMOKE: FAIL (pruning discarded or changed the exact winner)");
        return ExitCode::FAILURE;
    }

    // Wall-clock floor: the full harness vs the legacy loop. The full
    // table asserts 3×; the smoke gate relaxes to 2× for noisy CI
    // runners.
    let (base_ms, seq_ms, har_ms) = match (|| -> Result<_, String> {
        let t = Instant::now();
        let _ = record(&cfg)?;
        let base_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let _ = adapt_with(&cfg, &policy, &seq_opts())?;
        let seq_ms = (t.elapsed().as_secs_f64() * 1e3 - base_ms).max(0.1);
        let t = Instant::now();
        let _ = adapt_with(&cfg, &policy, &harness_opts(8))?;
        let har_ms = (t.elapsed().as_secs_f64() * 1e3 - base_ms).max(0.1);
        Ok((base_ms, seq_ms, har_ms))
    })() {
        Ok(v) => v,
        Err(e) => {
            println!("EVAL SMOKE: FAIL (timing runs: {e})");
            return ExitCode::FAILURE;
        }
    };
    let speedup = seq_ms / har_ms;
    if speedup < 2.0 {
        println!(
            "EVAL SMOKE: FAIL (candidate loop speedup {speedup:.2}x < 2x: seq {seq_ms:.0}ms, har8 {har_ms:.0}ms, baseline {base_ms:.0}ms)"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "EVAL SMOKE: OK ({} candidates, {} replayed after pruning, loop speedup {speedup:.2}x, reports byte-identical at eval threads 1/2/7)",
        first.report.candidates.len(),
        first
            .report
            .candidates
            .iter()
            .filter(|d| d.status.is_replayed())
            .count()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut smoke_mode = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke_mode = true,
            // The smoke assertions are always on; accepted so the CI
            // invocation matches the other gates.
            "--check" => {}
            other => {
                eprintln!("eval-bench: unknown flag `{other}` (only --smoke / --check)");
                return ExitCode::from(2);
            }
        }
    }
    if smoke_mode {
        return smoke();
    }

    let policy = AdaptPolicy::default();
    println!("Shared candidate-evaluation harness vs the legacy sequential loop");
    println!("(adaptation over generated scale programs, k=9, 8 virtual threads, MultiGrain).");
    println!("Times are the candidate loop only (baseline recording subtracted). seq =");
    println!("hoisting off, 1 eval worker, exact; har8 = invariants hoisted, 8 eval");
    println!("workers, top-{TOP_K} pruning + family guard. `replay` counts candidates whose");
    println!("cost was measured (deduped configurations share one run); `sound` checks the");
    println!("pruned run kept and selected the exact winner; `beam` shows compound");
    println!("candidates evaluated/selected by the beam search.");
    println!();
    println!(
        "{:<16} {:>5} {:>6} {:>9} {:>9} {:>8} {:>6}  {:<14} beam",
        "Program", "cand", "replay", "seq-ms", "har8-ms", "speedup", "sound", "winner"
    );
    let mut rows = Vec::new();
    for spec in specs() {
        let cfg = RunConfig::from_spec(&spec, 9, ExecMode::MultiGrain, 8);
        match run_row(&cfg, &policy) {
            Ok(r) => rows.push(r),
            Err(e) => {
                println!("{:<16} ERROR: {e}", spec.name);
                return ExitCode::FAILURE;
            }
        }
    }
    let mut failed = false;
    for r in &rows {
        println!(
            "{:<16} {:>5} {:>6} {:>9.1} {:>9.1} {:>7.2}x {:>6}  {:<14} {}",
            r.name,
            r.cands,
            r.replayed,
            r.seq_ms,
            r.har_ms,
            r.seq_ms / r.har_ms,
            if r.sound { "yes" } else { "NO" },
            r.winner,
            r.beam
        );
        if !r.sound {
            failed = true;
        }
    }
    let total_seq: f64 = rows.iter().map(|r| r.seq_ms).sum();
    let total_har: f64 = rows.iter().map(|r| r.har_ms).sum();
    let speedup = total_seq / total_har;
    println!();
    println!(
        "total candidate-loop wall-clock: seq {total_seq:.1}ms, har8 {total_har:.1}ms ({speedup:.2}x)"
    );
    println!("exact parallel reports matched the sequential bytes on every row; pruning");
    println!("is advisory (replayed costs exact, estimates recorded per pruned candidate).");
    // Thread-count determinism, shown on the artifact: the pruned,
    // beam-searching harness byte-for-byte agrees with itself at eval
    // thread counts 1, 2, and 7.
    {
        let spec = &specs()[0];
        let cfg = RunConfig::from_spec(spec, 9, ExecMode::MultiGrain, 8);
        let mut jsons = Vec::new();
        for eval_threads in [1usize, 2, 7] {
            let o = EvalOptions {
                beam: Some(BeamPolicy::default()),
                ..harness_opts(eval_threads)
            };
            match adapt_with(&cfg, &policy, &o) {
                Ok(r) => jsons.push((
                    r.report.to_json(),
                    r.beam.map(|b| b.to_json()),
                    r.baseline.trace.digest(),
                )),
                Err(e) => {
                    println!("EVAL TABLE: FAIL ({eval_threads} eval threads: {e})");
                    return ExitCode::FAILURE;
                }
            }
        }
        if jsons[1..].iter().all(|j| *j == jsons[0]) {
            println!(
                "reports byte-identical at eval threads 1/2/7 ({}, pruning + beam on).",
                cfg.name
            );
        } else {
            println!("EVAL TABLE: FAIL (report diverged across eval thread counts)");
            failed = true;
        }
    }
    if speedup < 3.0 {
        println!("EVAL TABLE: FAIL (aggregate speedup {speedup:.2}x < 3x)");
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
