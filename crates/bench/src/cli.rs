//! Shared command-line plumbing for the harness binaries.
//!
//! Every `trace-dump` subcommand and table bin used to carry its own
//! copy of the same boilerplate: the workload-name lookup, the
//! `--mode/--k/--threads/--ops/--contention` flag loop, trace-file
//! loading, and the write-canonical-JSON-and-announce dance. This
//! module is the single copy. Error message shapes are part of the
//! contract — `"<cmd>: <flag> needs <what>"`, `"<flag>: <parse error>"`
//! — so scripts grepping stderr keep working across bins.

use atomic_lock_inference::replay::RunConfig;
use interp::{ExecMode, WeakenPlan};
use workloads::{micro, stamp, Contention, RunSpec};

/// Every workload name the binaries accept, for usage strings.
pub const WORKLOADS: &str = "list hashtable hashtable2 rbtree th scale genome vacation kmeans";

/// Resolves a workload name to its [`RunSpec`] at `ops` operations per
/// thread under contention mix `c`.
pub fn workload(name: &str, ops: i64, c: Contention) -> Option<RunSpec> {
    Some(match name {
        "list" => micro::list(c, ops, 1),
        "hashtable" => micro::hashtable(c, ops, 1),
        "hashtable2" => micro::hashtable2(c, ops, 1),
        "rbtree" => micro::rbtree(c, ops, 1),
        "th" => micro::th(c, ops, 1),
        "scale" => workloads::scale::smoke(
            "scale",
            workloads::scale::ScaleParams {
                depth: 3,
                width: 4,
                sections: 12,
                stmts_per_fn: 10,
                seed: 11,
            },
            ops,
        ),
        "genome" => stamp::genome(ops, 1),
        "vacation" => stamp::vacation(ops, 1),
        "kmeans" => stamp::kmeans(ops, 1),
        _ => return None,
    })
}

/// Parses an execution-mode name (`global`, `multigrain`/`mg`, `stm`,
/// `validate`).
pub fn parse_exec_mode(s: &str) -> Option<ExecMode> {
    Some(match s {
        "global" => ExecMode::Global,
        "multigrain" | "mg" => ExecMode::MultiGrain,
        "stm" => ExecMode::Stm,
        "validate" => ExecMode::Validate,
        _ => return None,
    })
}

/// Parses a `SECTION:INDEX` weaken plan.
pub fn parse_weaken(v: &str) -> Result<WeakenPlan, String> {
    let (s, i) = v
        .split_once(':')
        .ok_or_else(|| format!("--weaken: `{v}` is not SECTION:INDEX"))?;
    Ok(WeakenPlan {
        section: s.parse().map_err(|e| format!("--weaken section: {e}"))?,
        drop_index: i.parse().map_err(|e| format!("--weaken index: {e}"))?,
    })
}

/// Loads a canonical-JSON trace file.
pub fn load_trace(path: &str) -> Result<trace::Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    trace::Trace::from_json(&text)
}

/// Writes `contents` to `path` and announces it (`wrote <path>`), the
/// convention every bin uses for canonical-JSON artifacts.
pub fn write_text(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("{path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

/// Signed percentage change of `new` against `base` (guarding the
/// zero baseline), the delta column every table prints.
pub fn delta_pct(base: u64, new: u64) -> f64 {
    100.0 * (new as f64 - base as f64) / (base as f64).max(1.0)
}

/// A cursor over `--flag value` argument lists: yields flags, fetches
/// their values with the shared error shapes.
pub struct Flags<'a> {
    cmd: &'a str,
    it: std::slice::Iter<'a, String>,
}

impl<'a> Flags<'a> {
    /// A cursor for subcommand `cmd` over its argument tail.
    pub fn new(cmd: &'a str, args: &'a [String]) -> Flags<'a> {
        Flags {
            cmd,
            it: args.iter(),
        }
    }

    /// The next flag, if any.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<&'a str> {
        self.it.next().map(String::as_str)
    }

    /// The value following `flag`, or `"<cmd>: <flag> needs <what>"`.
    pub fn value(&mut self, flag: &str, what: &str) -> Result<&'a str, String> {
        self.it
            .next()
            .map(String::as_str)
            .ok_or_else(|| format!("{}: {flag} needs {what}", self.cmd))
    }

    /// [`Flags::value`] parsed into `T`, failing as `"<flag>: <err>"`.
    pub fn parsed<T>(&mut self, flag: &str, what: &str) -> Result<T, String>
    where
        T: std::str::FromStr,
        T::Err: std::fmt::Display,
    {
        self.value(flag, what)?
            .parse()
            .map_err(|e| format!("{flag}: {e}"))
    }

    /// The shared unknown-flag error.
    pub fn unknown(&self, flag: &str) -> String {
        format!("{}: unknown flag `{flag}`", self.cmd)
    }
}

/// The run-shape flags shared by every workload-driving subcommand:
/// `--mode`, `--k`, `--threads`, `--ops`, `--contention`.
pub struct RunArgs {
    pub mode: ExecMode,
    pub k: usize,
    pub threads: usize,
    pub ops: i64,
    pub contention: Contention,
}

impl RunArgs {
    /// Defaults with the caller's thread count and contention mix
    /// (mode MultiGrain, k 9, 200 ops).
    pub fn new(threads: usize, contention: Contention) -> RunArgs {
        RunArgs {
            mode: ExecMode::MultiGrain,
            k: 9,
            threads,
            ops: 200,
            contention,
        }
    }

    /// Consumes `flag` if it is one of the shared run-shape flags;
    /// returns whether it was.
    pub fn apply(&mut self, flag: &str, f: &mut Flags) -> Result<bool, String> {
        match flag {
            "--mode" => {
                let v = f.value(flag, "a mode")?;
                self.mode =
                    parse_exec_mode(v).ok_or_else(|| format!("{}: bad mode `{v}`", f.cmd))?;
            }
            "--k" => self.k = f.parsed(flag, "a depth")?,
            "--threads" => self.threads = f.parsed(flag, "a count")?,
            "--ops" => self.ops = f.parsed(flag, "a count")?,
            "--contention" => {
                self.contention = match f.value(flag, "low|high")? {
                    "low" => Contention::Low,
                    "high" => Contention::High,
                    other => return Err(format!("{}: bad contention `{other}`", f.cmd)),
                };
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Resolves workload `name` under these flags into a ready
    /// [`RunConfig`].
    pub fn config(&self, cmd: &str, name: &str) -> Result<RunConfig, String> {
        let spec = workload(name, self.ops, self.contention)
            .ok_or_else(|| format!("{cmd}: unknown workload `{name}`"))?;
        Ok(RunConfig::from_spec(&spec, self.k, self.mode, self.threads))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn shared_flags_parse_and_unknowns_fall_through() {
        let args = strings(&["--mode", "stm", "--k", "4", "--threads", "6", "--json", "x"]);
        let mut ra = RunArgs::new(8, Contention::High);
        let mut f = Flags::new("adapt", &args);
        let mut leftovers = Vec::new();
        while let Some(flag) = f.next() {
            if ra.apply(flag, &mut f).unwrap() {
                continue;
            }
            leftovers.push(flag.to_string());
            f.value(flag, "a path").unwrap();
        }
        assert_eq!(ra.mode, ExecMode::Stm);
        assert_eq!(ra.k, 4);
        assert_eq!(ra.threads, 6);
        assert_eq!(ra.ops, 200, "untouched flags keep their defaults");
        assert_eq!(leftovers, ["--json"]);
    }

    #[test]
    fn error_shapes_are_stable() {
        let args = strings(&["--k"]);
        let mut ra = RunArgs::new(4, Contention::Low);
        let mut f = Flags::new("record", &args);
        let flag = f.next().unwrap();
        assert_eq!(
            ra.apply(flag, &mut f).unwrap_err(),
            "record: --k needs a depth"
        );
        let args = strings(&["--mode", "fast"]);
        let mut f = Flags::new("sched", &args);
        let flag = f.next().unwrap();
        assert_eq!(
            ra.apply(flag, &mut f).unwrap_err(),
            "sched: bad mode `fast`"
        );
        assert_eq!(f.unknown("--bogus"), "sched: unknown flag `--bogus`");
    }

    #[test]
    fn weaken_plans_round_trip() {
        let w = parse_weaken("3:1").unwrap();
        assert_eq!((w.section, w.drop_index), (3, 1));
        assert!(parse_weaken("31").unwrap_err().contains("SECTION:INDEX"));
    }

    #[test]
    fn every_advertised_workload_resolves() {
        for name in WORKLOADS.split_whitespace() {
            assert!(
                workload(name, 10, Contention::Low).is_some(),
                "workload `{name}` advertised but unresolvable"
            );
        }
        assert!(workload("nope", 10, Contention::Low).is_none());
    }
}
