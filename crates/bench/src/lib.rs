//! # bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's §6 (see the
//! `bin/` targets):
//!
//! | target | reproduces |
//! |---|---|
//! | `table1`  | program size, atomic sections, analysis time at k=0/9 |
//! | `figure7` | combined lock counts by category over k = 0..9 |
//! | `table2`  | execution time with 8 threads: Global / Coarse / Fine+Coarse / STM |
//! | `figure8` | scalability at 1/2/4/8 threads for rbtree, hashtable-2, TH, genome, kmeans |
//! | `ablation`| lock counts under each scheme component alone (framework parameterization) |
//!
//! The [`harness`] module compiles a [`workloads::RunSpec`], infers and
//! applies locks, and times a multithreaded run under one of the four
//! configurations of Table 2. The [`cli`] module is the shared
//! command-line plumbing (workload lookup, flag parsing, trace
//! loading, canonical-JSON output) for every bin.

pub mod cli;

pub mod harness {
    use interp::{ExecMode, Machine, Options};
    use lockscheme::SchemeConfig;
    use pointsto::PointsTo;
    use std::sync::Arc;
    use workloads::RunSpec;

    /// One column of Table 2.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum Config {
        /// A single global lock per section.
        Global,
        /// Inferred locks at k = 0 (coarse only).
        Coarse,
        /// Inferred locks at k = 9 (fine + coarse).
        FineCoarse,
        /// TL2 software transactional memory.
        Stm,
    }

    impl Config {
        /// All four columns, in the paper's order.
        pub const ALL: [Config; 4] = [
            Config::Global,
            Config::Coarse,
            Config::FineCoarse,
            Config::Stm,
        ];

        /// Column header.
        pub fn label(self) -> &'static str {
            match self {
                Config::Global => "Global",
                Config::Coarse => "Coarse(k=0)",
                Config::FineCoarse => "Fine+Coarse(k=9)",
                Config::Stm => "STM",
            }
        }

        fn mode(self) -> ExecMode {
            match self {
                Config::Global => ExecMode::Global,
                Config::Coarse | Config::FineCoarse => ExecMode::MultiGrain,
                Config::Stm => ExecMode::Stm,
            }
        }

        fn k(self) -> usize {
            match self {
                Config::FineCoarse => 9,
                _ => 0,
            }
        }
    }

    /// Result of one timed run.
    #[derive(Clone, Copy, Debug)]
    pub struct Outcome {
        /// Wall-clock seconds of the worker phase.
        pub seconds: f64,
        /// STM commits (0 for lock configs).
        pub commits: u64,
        /// STM aborts (0 for lock configs).
        pub aborts: u64,
        /// STM transactions that escalated to irrevocable global mode
        /// after exhausting the abort budget (0 for lock configs).
        pub fallbacks: u64,
        /// Every degradation-ladder counter for the run (poisoning,
        /// deadlocks, timeouts, injections — all zero in healthy
        /// benchmark runs).
        pub degradation: lockinfer::DegradationReport,
    }

    /// Compiles, transforms, runs `spec` under `config` with `threads`
    /// worker threads, then executes the spec's invariant check.
    ///
    /// # Panics
    ///
    /// Panics on compile errors, runtime faults, or failed invariant
    /// checks — a benchmark that does not run correctly must not report
    /// a time.
    pub fn run(spec: &RunSpec, config: Config, threads: usize) -> Outcome {
        let program = lir::compile(&spec.source).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let pt = Arc::new(PointsTo::analyze(&program));
        let cfg = SchemeConfig::full(config.k(), program.elem_field_opt());
        let analysis = lockinfer::analyze_program(&program, &pt, cfg);
        let transformed = Arc::new(lockinfer::transform(&program, &analysis));
        let machine = Machine::new(
            transformed,
            pt,
            config.mode(),
            Options {
                heap_cells: spec.heap_cells,
                seed: 0xBEEF ^ threads as u64,
                ..Options::default()
            },
        );
        let (init_fn, init_args) = &spec.init;
        machine
            .run_named(init_fn, init_args)
            .unwrap_or_else(|e| panic!("{} init: {e}", spec.name));
        let (worker_fn, worker_args) = &spec.worker;
        // Virtual time: this host has a single CPU, so the paper's
        // 8-core measurements are reproduced under the deterministic
        // virtual-time scheduler; "seconds" is the makespan at 1 ns per
        // interpreted instruction. See interp::sim and DESIGN.md.
        let (_, makespan) = machine
            .run_threads_virtual(worker_fn, threads, |_| worker_args.clone())
            .unwrap_or_else(|e| panic!("{} worker ({}): {e}", spec.name, config.label()));
        let seconds = makespan as f64 * 1e-9;
        if let Some(check) = spec.check {
            machine
                .run_named(check, &[])
                .unwrap_or_else(|e| panic!("{} check ({}): {e}", spec.name, config.label()));
        }
        let stats = machine.stm_stats();
        Outcome {
            seconds,
            commits: stats.commits,
            aborts: stats.aborts,
            fallbacks: stats.fallbacks,
            degradation: machine.degradation_report(),
        }
    }

    /// Scale factor for benchmark sizes: set `REPRO_SCALE` (default 1.0)
    /// to trade fidelity for wall-clock time.
    pub fn scale() -> f64 {
        std::env::var("REPRO_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1.0)
    }

    /// Ops-per-thread helper honoring `REPRO_SCALE`.
    pub fn ops(base: i64) -> i64 {
        ((base as f64) * scale()).max(1.0) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::harness::{run, Config};
    use workloads::{micro, stamp, Contention};

    #[test]
    fn every_config_runs_a_micro_benchmark_correctly() {
        let spec = micro::hashtable2(Contention::High, 100, 5);
        for config in Config::ALL {
            let out = run(&spec, config, 4);
            assert!(out.seconds >= 0.0);
            if config == Config::Stm {
                assert!(out.commits > 0);
            }
        }
    }

    #[test]
    fn stamp_kernel_runs_under_stm_and_locks() {
        let spec = stamp::kmeans(50, 5);
        for config in [Config::Global, Config::FineCoarse, Config::Stm] {
            run(&spec, config, 4);
        }
    }

    /// The sentinel-overhead gate depends on the scale smoke twin
    /// interpreting without faults (the analysis-only generator does
    /// not); a tiny shape keeps this cheap.
    #[test]
    fn scale_smoke_twin_is_interpretable() {
        let spec = workloads::scale::smoke(
            "smoke-tiny",
            workloads::scale::ScaleParams {
                depth: 2,
                width: 3,
                sections: 3,
                stmts_per_fn: 8,
                seed: 7,
            },
            2,
        );
        let out = run(&spec, Config::FineCoarse, 2);
        assert!(out.degradation.is_clean(), "{}", out.degradation);
    }
}
