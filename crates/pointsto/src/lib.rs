//! # pointsto — Steensgaard's unification-based points-to analysis
//!
//! This crate implements the alias-analysis substrate of *Inferring
//! Locks for Atomic Sections* (PLDI 2008, §4.3): a flow-insensitive,
//! context-insensitive, field-insensitive points-to analysis in the
//! style of Steensgaard (POPL 1996). The result partitions all memory
//! locations (variable cells and allocation-site cells) into disjoint
//! equivalence classes, each with at most one points-to successor edge
//! `s → s'`.
//!
//! The lock inference uses this in two ways:
//!
//! * the classes are the *coarse-grain locks* of the `Σ≡` scheme: the
//!   lock `l_s` protects every location in class `s`;
//! * the `mayAlias(e1, e2)` oracle needed by the store transfer function
//!   `S_{*x=y}` is "the address expressions fall in the same class".
//!
//! ```
//! use pointsto::PointsTo;
//! let p = lir::compile("fn main(a, b) { a = b; let c = *a; }").unwrap();
//! let pt = PointsTo::analyze(&p);
//! let (a, b) = (p.functions[0].params[0], p.functions[0].params[1]);
//! // a and b were unified: *a and *b may alias.
//! assert_eq!(pt.deref(pt.class_of_var(a)), pt.deref(pt.class_of_var(b)));
//! ```

use lir::{FnId, Instr, PathExpr, PathOp, Program, Rvalue, VarId};
use std::collections::HashMap;
use std::fmt;

/// A points-to equivalence class (a *points-to set* in the paper's
/// terminology). Class ids are dense in `0..PointsTo::n_classes()` and
/// stable for the lifetime of the analysis result.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PtsClass(pub u32);

impl fmt::Debug for PtsClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// An allocation site: the instruction `Assign(_, Alloc|AllocDyn)` at
/// index `idx` of function `func`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AllocSite {
    pub func: FnId,
    pub idx: u32,
}

/// Result of the points-to analysis.
///
/// All queries are O(α) after construction.
#[derive(Debug)]
pub struct PointsTo {
    /// Union-find parents (frozen after `analyze`; queries use the
    /// compressed `canon` table instead).
    canon: Vec<u32>,
    /// Points-to successor per canonical cell (by raw cell index).
    succ: Vec<Option<u32>>,
    /// First cell index of the allocation-site block.
    n_vars: usize,
    /// Allocation sites in discovery order; cell of site `i` is
    /// `n_vars + i`.
    sites: Vec<AllocSite>,
    site_index: HashMap<AllocSite, usize>,
    /// Dense class numbering: raw canonical cell → class id.
    class_of_cell: Vec<u32>,
    n_classes: u32,
    /// Members per class (for diagnostics and concrete denotations).
    members: Vec<Vec<u32>>,
}

struct Builder {
    parent: Vec<u32>,
    succ: Vec<Option<u32>>,
}

impl Builder {
    fn new(n: usize) -> Self {
        Builder {
            parent: (0..n as u32).collect(),
            succ: vec![None; n],
        }
    }

    fn fresh(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.succ.push(None);
        id
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Steensgaard's conditional join: union two classes and recursively
    /// merge their successors (iteratively, with a worklist).
    fn unify(&mut self, a: u32, b: u32) {
        let mut work = vec![(a, b)];
        while let Some((a, b)) = work.pop() {
            let (ra, rb) = (self.find(a), self.find(b));
            if ra == rb {
                continue;
            }
            self.parent[rb as usize] = ra;
            match (self.succ[ra as usize], self.succ[rb as usize]) {
                (Some(sa), Some(sb)) => work.push((sa, sb)),
                (None, Some(sb)) => self.succ[ra as usize] = Some(sb),
                _ => {}
            }
        }
    }

    /// The successor class of `x`, created fresh if absent.
    fn deref(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        match self.succ[r as usize] {
            Some(s) => self.find(s),
            None => {
                let s = self.fresh();
                self.succ[r as usize] = Some(s);
                s
            }
        }
    }
}

impl PointsTo {
    /// Runs the analysis over a whole program.
    ///
    /// Every variable `v` owns the cell `v.0`; every allocation site
    /// gets one cell (field-insensitive: all cells of an allocation are
    /// one abstract location, exactly as the paper collapses array and
    /// struct offsets).
    pub fn analyze(program: &Program) -> PointsTo {
        let n_vars = program.vars.len();
        // Type filter: a C front end would never unify through `int`
        // assignments (non-pointer values carry Steensgaard's ⊥ type).
        // Our cells are untyped, so we first compute which variables may
        // ever hold a location and skip value-flow rules for the rest —
        // otherwise integer stores (keys, counters) into object fields
        // would merge every structure's class through the shared
        // "integer" contents.
        let maybe_ptr = maybe_pointer_vars(program);
        // Discover allocation sites first so their cells are contiguous.
        let mut sites = Vec::new();
        let mut site_index = HashMap::new();
        for func in &program.functions {
            for (i, ins) in func.body.iter().enumerate() {
                if let Instr::Assign(_, Rvalue::Alloc(_) | Rvalue::AllocDyn(_)) = ins {
                    let site = AllocSite {
                        func: func.id,
                        idx: i as u32,
                    };
                    site_index.insert(site, sites.len());
                    sites.push(site);
                }
            }
        }
        let mut b = Builder::new(n_vars + sites.len());
        let cell_of_var = |v: VarId| v.0;
        let cell_of_site =
            |site_index: &HashMap<AllocSite, usize>, s: AllocSite| (n_vars + site_index[&s]) as u32;

        for func in &program.functions {
            for (i, ins) in func.body.iter().enumerate() {
                match ins {
                    Instr::Assign(x, rv) => {
                        let cx = cell_of_var(*x);
                        match rv {
                            Rvalue::Copy(y) => {
                                if maybe_ptr[y.0 as usize] {
                                    let (px, py) = (b.deref(cx), b.deref(cell_of_var(*y)));
                                    b.unify(px, py);
                                }
                            }
                            Rvalue::AddrOf(y) => {
                                let px = b.deref(cx);
                                b.unify(px, cell_of_var(*y));
                            }
                            Rvalue::Load(y) => {
                                let py = b.deref(cell_of_var(*y));
                                let (px, ppy) = (b.deref(cx), b.deref(py));
                                b.unify(px, ppy);
                            }
                            Rvalue::FieldAddr(y, _) | Rvalue::DynAddr(y, _) => {
                                let (px, py) = (b.deref(cx), b.deref(cell_of_var(*y)));
                                b.unify(px, py);
                            }
                            Rvalue::Alloc(_) | Rvalue::AllocDyn(_) => {
                                let site = AllocSite {
                                    func: func.id,
                                    idx: i as u32,
                                };
                                let px = b.deref(cx);
                                b.unify(px, cell_of_site(&site_index, site));
                            }
                            Rvalue::Call(f, args) => {
                                let callee = program.func(*f);
                                for (formal, actual) in callee.params.iter().zip(args) {
                                    if maybe_ptr[actual.0 as usize] {
                                        let (pf, pa) = (
                                            b.deref(cell_of_var(*formal)),
                                            b.deref(cell_of_var(*actual)),
                                        );
                                        b.unify(pf, pa);
                                    }
                                }
                                if maybe_ptr[callee.ret.0 as usize] {
                                    let (px, pr) = (b.deref(cx), b.deref(cell_of_var(callee.ret)));
                                    b.unify(px, pr);
                                }
                            }
                            Rvalue::Null
                            | Rvalue::ConstInt(_)
                            | Rvalue::Arith(..)
                            | Rvalue::Cmp(..)
                            | Rvalue::Intrinsic(..) => {}
                        }
                    }
                    Instr::Store(x, y) if maybe_ptr[y.0 as usize] => {
                        let px = b.deref(cell_of_var(*x));
                        let (ppx, py) = (b.deref(px), b.deref(cell_of_var(*y)));
                        b.unify(ppx, py);
                    }
                    _ => {}
                }
            }
        }

        PointsTo::freeze(b, n_vars, sites, site_index)
    }

    /// Freezes a builder: canonicalize every cell, densely number the
    /// classes (by first cell, so the numbering is deterministic), and
    /// rewrite successors to canonical representatives.
    fn freeze(
        mut b: Builder,
        n_vars: usize,
        sites: Vec<AllocSite>,
        site_index: HashMap<AllocSite, usize>,
    ) -> PointsTo {
        let total = b.parent.len();
        let mut canon = vec![0u32; total];
        let mut class_of_cell = vec![u32::MAX; total];
        let mut n_classes = 0u32;
        let mut members: Vec<Vec<u32>> = Vec::new();
        for c in 0..total as u32 {
            let r = b.find(c);
            canon[c as usize] = r;
            if class_of_cell[r as usize] == u32::MAX {
                class_of_cell[r as usize] = n_classes;
                members.push(Vec::new());
                n_classes += 1;
            }
            members[class_of_cell[r as usize] as usize].push(c);
        }
        // Rewrite succ to canonical representatives.
        let mut succ = vec![None; total];
        for c in 0..total as u32 {
            let r = canon[c as usize];
            if let Some(s) = b.succ[r as usize] {
                succ[r as usize] = Some(b.find(s));
            }
        }
        PointsTo {
            canon,
            succ,
            n_vars,
            sites,
            site_index,
            class_of_cell,
            n_classes,
            members,
        }
    }

    /// Incremental refinement: a new analysis result identical to this
    /// one except classes `a` and `b` are unified — with Steensgaard's
    /// recursive successor join, so the result is again a closed
    /// fixpoint. This is how quarantine-aware re-inference adds a
    /// may-alias edge a runtime violation witnessed (the abstraction
    /// kept two regions apart that the execution proved can denote the
    /// same cell) without re-running the whole-program analysis cold:
    /// the frozen `canon`/`succ` tables are already a valid union-find
    /// snapshot, so the cost is O(cells), not O(program).
    ///
    /// Class ids are renumbered by the same first-cell rule
    /// [`PointsTo::analyze`] uses, so the result is deterministic.
    pub fn merged(&self, a: PtsClass, b: PtsClass) -> PointsTo {
        let builder = Builder {
            // `canon` is fully path-compressed (roots map to
            // themselves) and `succ` holds canonical representatives —
            // a resumable union-find state.
            parent: self.canon.clone(),
            succ: self.succ.clone(),
        };
        let mut builder = builder;
        let ra = self.canon[self.members[a.0 as usize][0] as usize];
        let rb = self.canon[self.members[b.0 as usize][0] as usize];
        builder.unify(ra, rb);
        PointsTo::freeze(
            builder,
            self.n_vars,
            self.sites.clone(),
            self.site_index.clone(),
        )
    }

    /// Number of points-to classes.
    pub fn n_classes(&self) -> u32 {
        self.n_classes
    }

    #[inline]
    fn class_of_raw(&self, cell: u32) -> PtsClass {
        PtsClass(self.class_of_cell[self.canon[cell as usize] as usize])
    }

    /// The class containing the *cell of variable* `v` — i.e. the
    /// points-to set of `&v` (the `x̄` operator of the `Σ≡` scheme).
    #[inline]
    pub fn class_of_var(&self, v: VarId) -> PtsClass {
        self.class_of_raw(v.0)
    }

    /// The class of the cells allocated at `site`, if the site exists.
    pub fn class_of_site(&self, site: AllocSite) -> Option<PtsClass> {
        self.site_index
            .get(&site)
            .map(|&i| self.class_of_raw((self.n_vars + i) as u32))
    }

    /// The points-to successor `s → s'`, if any pointer was ever stored
    /// in cells of `s`.
    #[inline]
    pub fn deref(&self, s: PtsClass) -> Option<PtsClass> {
        // Find a representative cell of the class.
        let rep = self.members[s.0 as usize][0];
        let r = self.canon[rep as usize];
        self.succ[r as usize].map(|t| self.class_of_raw(t))
    }

    /// The class of locations denoted by a lock path expression
    /// (an address expression), or `None` when a dereference step has no
    /// successor edge (the expression can only evaluate to null or to a
    /// freshly separate region).
    pub fn class_of_path(&self, path: &PathExpr) -> Option<PtsClass> {
        let mut c = self.class_of_var(path.base);
        for op in &path.ops {
            match op {
                // Offsets — static fields and dynamic indices — stay
                // within the object's class (field-insensitive).
                PathOp::Field(_) | PathOp::Index(_) => {}
                PathOp::Deref => c = self.deref(c)?,
            }
        }
        Some(c)
    }

    /// The `mayAlias` oracle over address expressions: two lock paths
    /// may denote the same location iff they land in the same class.
    pub fn may_alias_paths(&self, a: &PathExpr, b: &PathExpr) -> bool {
        match (self.class_of_path(a), self.class_of_path(b)) {
            (Some(ca), Some(cb)) => ca == cb,
            _ => a == b,
        }
    }

    /// All allocation sites whose cells fall in class `s` (used by the
    /// soundness checker to compute concrete denotations of coarse
    /// locks).
    pub fn sites_in_class(&self, s: PtsClass) -> Vec<AllocSite> {
        self.members[s.0 as usize]
            .iter()
            .filter(|&&c| {
                c as usize >= self.n_vars && (c as usize) < self.n_vars + self.sites.len()
            })
            .map(|&c| self.sites[c as usize - self.n_vars])
            .collect()
    }

    /// All variables whose cells fall in class `s`.
    pub fn vars_in_class(&self, s: PtsClass) -> Vec<VarId> {
        self.members[s.0 as usize]
            .iter()
            .filter(|&&c| (c as usize) < self.n_vars)
            .map(|&c| VarId(c))
            .collect()
    }

    /// Number of memory cells (variables + allocation sites) in class
    /// `s`; a size proxy for how coarse the corresponding lock is.
    pub fn class_size(&self, s: PtsClass) -> usize {
        self.members[s.0 as usize].len()
    }
}

/// Computes which variables may ever hold a memory location: a forward
/// fixpoint over value-producing statements. Conservative — anything
/// read from the heap counts as a possible pointer.
fn maybe_pointer_vars(program: &Program) -> Vec<bool> {
    let mut maybe = vec![false; program.vars.len()];
    // Parameters of entry functions (never called from inside the
    // program) receive values from the outside world: assume pointers.
    let mut called = vec![false; program.functions.len()];
    for func in &program.functions {
        for ins in &func.body {
            if let Instr::Assign(_, Rvalue::Call(f, _)) = ins {
                called[f.0 as usize] = true;
            }
        }
    }
    for func in &program.functions {
        if !called[func.id.0 as usize] {
            for p in &func.params {
                maybe[p.0 as usize] = true;
            }
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        let set = |v: VarId, val: bool, maybe: &mut Vec<bool>, changed: &mut bool| {
            if val && !maybe[v.0 as usize] {
                maybe[v.0 as usize] = true;
                *changed = true;
            }
        };
        for func in &program.functions {
            for ins in &func.body {
                if let Instr::Assign(x, rv) = ins {
                    let val = match rv {
                        Rvalue::AddrOf(_)
                        | Rvalue::Load(_)
                        | Rvalue::FieldAddr(..)
                        | Rvalue::DynAddr(..)
                        | Rvalue::Alloc(_)
                        | Rvalue::AllocDyn(_) => true,
                        Rvalue::Copy(y) => maybe[y.0 as usize],
                        Rvalue::Call(f, args) => {
                            let callee = program.func(*f);
                            for (formal, actual) in callee.params.iter().zip(args) {
                                let v = maybe[actual.0 as usize];
                                set(*formal, v, &mut maybe, &mut changed);
                            }
                            maybe[callee.ret.0 as usize]
                        }
                        Rvalue::Null
                        | Rvalue::ConstInt(_)
                        | Rvalue::Arith(..)
                        | Rvalue::Cmp(..)
                        | Rvalue::Intrinsic(..) => false,
                    };
                    set(*x, val, &mut maybe, &mut changed);
                }
            }
        }
    }
    maybe
}

#[cfg(test)]
mod tests {
    use super::*;
    use lir::compile;

    fn var(p: &Program, f: usize, name: &str) -> VarId {
        let func = &p.functions[f];
        *func
            .locals
            .iter()
            .chain(&func.params)
            .find(|v| p.var_name(**v) == name)
            .unwrap_or_else(|| panic!("no var {name}"))
    }

    #[test]
    fn copy_unifies_targets() {
        let p = compile("fn main(a, b) { a = b; }").unwrap();
        let pt = PointsTo::analyze(&p);
        let (a, b) = (var(&p, 0, "a"), var(&p, 0, "b"));
        // Cells of a and b stay distinct…
        assert_ne!(pt.class_of_var(a), pt.class_of_var(b));
        // …but their contents point into the same class.
        assert_eq!(pt.deref(pt.class_of_var(a)), pt.deref(pt.class_of_var(b)));
        assert!(pt.deref(pt.class_of_var(a)).is_some());
    }

    #[test]
    fn addr_of_points_at_the_cell() {
        let p = compile("fn main() { let x = null; let y = &x; }").unwrap();
        let pt = PointsTo::analyze(&p);
        let (x, y) = (var(&p, 0, "x"), var(&p, 0, "y"));
        assert_eq!(pt.deref(pt.class_of_var(y)), Some(pt.class_of_var(x)));
    }

    #[test]
    fn allocation_sites_partition() {
        let p = compile(
            "struct s { f; }
             fn main() { let a = new s; let b = new s; let c = a; }",
        )
        .unwrap();
        let pt = PointsTo::analyze(&p);
        let (a, b, c) = (var(&p, 0, "a"), var(&p, 0, "b"), var(&p, 0, "c"));
        // a and c share a target; b is separate (no flow between them).
        assert_eq!(pt.deref(pt.class_of_var(a)), pt.deref(pt.class_of_var(c)));
        assert_ne!(pt.deref(pt.class_of_var(a)), pt.deref(pt.class_of_var(b)));
        // Each target class contains its allocation site.
        let sa = pt.deref(pt.class_of_var(a)).unwrap();
        assert_eq!(pt.sites_in_class(sa).len(), 1);
    }

    #[test]
    fn flow_insensitivity_merges_both_branches() {
        // Figure 2 of the paper: x may alias y after the conditional.
        let p = compile(
            "struct s { data; }
             fn main(y, w) {
                 let x = null;
                 if (w == null) { x = y; }
                 atomic { x->data = w; let z = y->data; *z = null; }
             }",
        )
        .unwrap();
        let pt = PointsTo::analyze(&p);
        let (x, y) = (var(&p, 0, "x"), var(&p, 0, "y"));
        assert_eq!(pt.deref(pt.class_of_var(x)), pt.deref(pt.class_of_var(y)));
        // mayAlias(*x̄, *ȳ) should hold.
        let px = PathExpr {
            base: x,
            ops: vec![lir::PathOp::Deref],
        };
        let py = PathExpr {
            base: y,
            ops: vec![lir::PathOp::Deref],
        };
        assert!(pt.may_alias_paths(&px, &py));
    }

    #[test]
    fn disjoint_structures_stay_disjoint() {
        // The TH benchmark property: two structures never mixed stay in
        // different classes, so coarse locks allow parallelism.
        let p = compile(
            "struct node { next; }
             global tree, table;
             fn main() {
                 tree = new node;
                 table = new node;
                 tree->next = new node;
                 table->next = new node;
             }",
        )
        .unwrap();
        let pt = PointsTo::analyze(&p);
        let tree = p.globals[0];
        let table = p.globals[1];
        assert_ne!(
            pt.deref(pt.class_of_var(tree)),
            pt.deref(pt.class_of_var(table))
        );
    }

    #[test]
    fn store_through_pointer_unifies() {
        let p = compile("fn main(p, q, v) { *p = v; let u = *q; p = q; }").unwrap();
        let pt = PointsTo::analyze(&p);
        let (v, u) = (var(&p, 0, "v"), var(&p, 0, "u"));
        // p = q merges the pointees, so what v flowed into can be read at u.
        assert_eq!(pt.deref(pt.class_of_var(v)), pt.deref(pt.class_of_var(u)));
    }

    #[test]
    fn calls_unify_formals_and_returns() {
        let p = compile(
            "fn id(a) { return a; }
             fn main(m) { let r = id(m); }",
        )
        .unwrap();
        let pt = PointsTo::analyze(&p);
        let m = var(&p, 1, "m");
        let r = var(&p, 1, "r");
        assert_eq!(pt.deref(pt.class_of_var(m)), pt.deref(pt.class_of_var(r)));
    }

    #[test]
    fn path_classes_follow_edges() {
        let p = compile(
            "struct list { head; }
             fn main(l) { let h = l->head; let e = *h; }",
        )
        .unwrap();
        let pt = PointsTo::analyze(&p);
        let l = var(&p, 0, "l");
        // &l, value-of-l (one deref), head cell (deref+field = same class).
        let c0 = pt.class_of_path(&PathExpr::var(l)).unwrap();
        let c1 = pt
            .class_of_path(&PathExpr {
                base: l,
                ops: vec![lir::PathOp::Deref],
            })
            .unwrap();
        assert_ne!(c0, c1);
        let head_f = lir::FieldId(
            p.fields
                .iter()
                .position(|f| p.interner.resolve(f.name) == "head")
                .unwrap() as u32,
        );
        let c2 = pt
            .class_of_path(&PathExpr {
                base: l,
                ops: vec![lir::PathOp::Deref, lir::PathOp::Field(head_f)],
            })
            .unwrap();
        assert_eq!(c1, c2, "field offsets stay in the object's class");
    }

    #[test]
    fn null_only_paths_have_no_class() {
        let p = compile("fn main() { let x = null; }").unwrap();
        let pt = PointsTo::analyze(&p);
        let x = var(&p, 0, "x");
        let deref_x = PathExpr {
            base: x,
            ops: vec![lir::PathOp::Deref],
        };
        assert_eq!(pt.class_of_path(&deref_x), None);
        // Syntactically equal paths still alias themselves.
        assert!(pt.may_alias_paths(&deref_x, &deref_x));
    }

    #[test]
    fn merged_unifies_the_witnessed_classes_and_their_successors() {
        // Two structures the analysis keeps apart (the TH shape)…
        let p = compile(
            "struct node { next; }
             global tree, table;
             fn main() {
                 tree = new node;
                 table = new node;
                 tree->next = new node;
                 table->next = new node;
             }",
        )
        .unwrap();
        let pt = PointsTo::analyze(&p);
        let tree = p.globals[0];
        let table = p.globals[1];
        let (ct, cb) = (
            pt.deref(pt.class_of_var(tree)).unwrap(),
            pt.deref(pt.class_of_var(table)).unwrap(),
        );
        assert_ne!(ct, cb);
        // …merge on the violation witness: the refined result unifies
        // them, and Steensgaard's join carries the successors along.
        let refined = pt.merged(ct, cb);
        assert_eq!(
            refined.deref(refined.class_of_var(tree)),
            refined.deref(refined.class_of_var(table))
        );
        let st = refined.deref(refined.class_of_var(tree)).unwrap();
        assert_eq!(
            refined.sites_in_class(st).len(),
            2,
            "both head allocation sites land in the merged class"
        );
        // The original result is untouched (refinement is a new value).
        assert_ne!(
            pt.deref(pt.class_of_var(tree)),
            pt.deref(pt.class_of_var(table))
        );
        // Class count shrinks and the numbering stays dense.
        assert!(refined.n_classes() < pt.n_classes());
        for v in 0..p.vars.len() as u32 {
            assert!(refined.class_of_var(VarId(v)).0 < refined.n_classes());
        }
    }

    #[test]
    fn merged_is_idempotent_on_aliased_classes() {
        let p = compile("fn main(a, b) { a = b; }").unwrap();
        let pt = PointsTo::analyze(&p);
        let a = var(&p, 0, "a");
        let c = pt.class_of_var(a);
        let refined = pt.merged(c, c);
        assert_eq!(refined.n_classes(), pt.n_classes());
        assert_eq!(refined.class_of_var(a), c);
    }

    #[test]
    fn classes_are_dense() {
        let p = compile("fn main(a) { let b = a; let c = new(3); }").unwrap();
        let pt = PointsTo::analyze(&p);
        for v in 0..p.vars.len() as u32 {
            assert!(pt.class_of_var(VarId(v)).0 < pt.n_classes());
        }
    }
}
