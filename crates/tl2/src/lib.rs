//! # tl2 — a TL2-style software transactional memory
//!
//! The optimistic baseline of the PLDI 2008 evaluation is the TL2 STM of
//! Dice, Shalev, and Shavit (DISC 2006). This crate reimplements the
//! published algorithm over a flat word space:
//!
//! * a **global version clock**;
//! * per-cell **versioned write-locks** (version + lock bit in one word);
//! * **invisible reads**: sample version → read value → revalidate
//!   version, abort if the cell is locked or newer than the
//!   transaction's read version `rv`;
//! * **lazy versioning**: writes are buffered in a write set;
//! * **commit**: lock the write set in address order (bounded spin, else
//!   abort), increment the clock to get `wv`, validate the read set,
//!   write back and release with version `wv`.
//!
//! ```
//! use tl2::{Space, TxnError};
//! let space = Space::new(16);
//! let ((), stats) = space.atomically(|txn| {
//!     let v = txn.read(3)?;
//!     txn.write(3, v + 1);
//!     Ok::<_, TxnError>(())
//! });
//! assert_eq!(space.read_direct(3), 1);
//! assert!(stats.commits == 1);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A transactional conflict; propagate it out of the closure passed to
/// [`Space::atomically`] (the `?` operator does this) so the runtime can
/// roll back and retry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxnError;

impl std::fmt::Display for TxnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transaction conflict")
    }
}

impl std::error::Error for TxnError {}

/// Outcome counters of one [`Space::atomically`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TxnStats {
    /// Always 1 on return (the call retries until it commits).
    pub commits: u64,
    /// Aborted attempts before the successful one.
    pub aborts: u64,
    /// Transactions that exhausted their abort budget and completed as
    /// irrevocable global-mode executions.
    pub fallbacks: u64,
}

/// Capped exponential backoff, shared by every retry loop in the
/// workspace (STM retry here, the interpreter's section retry). Spin
/// counts double on each step and saturate at the cap.
#[derive(Clone, Copy, Debug)]
pub struct Backoff {
    cur: u32,
    cap: u32,
}

impl Backoff {
    /// The default spin cap (2^12), matching the historical retry loops.
    pub const DEFAULT_CAP: u32 = 1 << 12;

    /// A backoff starting at one spin with the default cap.
    pub fn new() -> Backoff {
        Backoff::with_cap(Backoff::DEFAULT_CAP)
    }

    /// A backoff starting at one spin with the given cap.
    pub fn with_cap(cap: u32) -> Backoff {
        Backoff {
            cur: 1,
            cap: cap.max(1),
        }
    }

    /// The spin count for this step; doubles (up to the cap) for the
    /// next. Use directly when the delay is charged to a virtual clock.
    pub fn spins(&mut self) -> u32 {
        let s = self.cur;
        self.cur = self.cur.saturating_mul(2).min(self.cap);
        s
    }

    /// Busy-waits for this step's spin count.
    pub fn spin(&mut self) {
        for _ in 0..self.spins() {
            std::hint::spin_loop();
        }
    }

    /// Restarts from one spin (e.g. after a successful acquisition).
    pub fn reset(&mut self) {
        self.cur = 1;
    }
}

impl Default for Backoff {
    fn default() -> Backoff {
        Backoff::new()
    }
}

/// Observer of transaction lifecycle transitions, for tracing backends.
/// Callbacks carry the thread token the driver passed to the tagged
/// notification methods ([`Space::note_commit_by`] and friends), so a
/// machine-wide observer can route the event to the right per-thread
/// buffer.
pub trait StmObserver: Send + Sync {
    /// The token's outermost transaction committed with the given
    /// read/write set sizes.
    fn txn_commit(&self, token: u64, reads: u64, writes: u64);
    /// The token's current attempt aborted (it will retry).
    fn txn_abort(&self, token: u64);
    /// The token's transaction escalated to irrevocable global mode.
    fn txn_fallback(&self, token: u64);
}

const LOCK_BIT: u64 = 1;

struct Cell {
    value: AtomicI64,
    /// `version << 1 | lock`.
    vlock: AtomicU64,
}

/// A flat transactional word space.
pub struct Space {
    cells: Vec<Cell>,
    clock: AtomicU64,
    commits: AtomicU64,
    aborts: AtomicU64,
    fallbacks: AtomicU64,
    /// Degradation gate: optimistic commits take it shared for the
    /// duration of the commit protocol; an irrevocable transaction holds
    /// it exclusively for its whole lifetime, so the two write paths can
    /// never interleave on a cell.
    commit_gate: std::sync::RwLock<()>,
    /// Lifecycle observer for the tagged notification methods; `None`
    /// costs one relaxed load per notification.
    observer: std::sync::RwLock<Option<std::sync::Arc<dyn StmObserver>>>,
}

impl std::fmt::Debug for Space {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Space")
            .field("len", &self.cells.len())
            .field("clock", &self.clock.load(Ordering::Relaxed))
            .finish()
    }
}

impl Space {
    /// Creates a space of `n` cells, all zero.
    pub fn new(n: usize) -> Space {
        Space {
            cells: (0..n)
                .map(|_| Cell {
                    value: AtomicI64::new(0),
                    vlock: AtomicU64::new(0),
                })
                .collect(),
            clock: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            commit_gate: std::sync::RwLock::new(()),
            observer: std::sync::RwLock::new(None),
        }
    }

    /// Installs (or clears) the lifecycle observer used by the tagged
    /// notification methods.
    pub fn set_observer(&self, observer: Option<std::sync::Arc<dyn StmObserver>>) {
        *self
            .observer
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = observer;
    }

    fn with_observer(&self, f: impl FnOnce(&dyn StmObserver)) {
        let g = self
            .observer
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(obs) = g.as_deref() {
            f(obs);
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the space has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Non-transactional read (for use outside transactions only).
    pub fn read_direct(&self, i: usize) -> i64 {
        self.cells[i].value.load(Ordering::Acquire)
    }

    /// Non-transactional write (for use outside transactions only).
    pub fn write_direct(&self, i: usize, v: i64) {
        self.cells[i].value.store(v, Ordering::Release);
    }

    /// Global abort/commit/fallback counters since construction.
    pub fn global_stats(&self) -> TxnStats {
        TxnStats {
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Begins a transaction explicitly. Prefer [`Space::atomically`]
    /// unless the transaction must span a non-closure control structure
    /// (the interpreter's instruction loop does).
    pub fn begin(&self) -> Txn<'_> {
        Txn {
            space: self,
            rv: self.clock.load(Ordering::Acquire),
            reads: Vec::new(),
            writes: HashMap::new(),
            irrevocable: None,
        }
    }

    /// Attempts to begin an irrevocable transaction: one that executes
    /// in global mode, can never abort, and excludes every optimistic
    /// commit for its lifetime. This is the degradation path for
    /// transactions starved by repeated conflicts. Fails (returning
    /// `None`) while another irrevocable transaction or an optimistic
    /// commit holds the gate; callers on a virtual-time scheduler must
    /// use this non-blocking form and charge the retry delay to their
    /// own clock, or they would stall the scheduler for real.
    pub fn try_begin_irrevocable(&self) -> Option<Txn<'_>> {
        let guard = self.commit_gate.try_write().ok()?;
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
        Some(Txn {
            space: self,
            rv: self.clock.load(Ordering::Acquire),
            reads: Vec::new(),
            writes: HashMap::new(),
            irrevocable: Some(guard),
        })
    }

    /// Blocking form of [`Space::try_begin_irrevocable`] for real-time
    /// callers. Do not use under a cooperative scheduler: it parks the
    /// OS thread until the gate frees.
    pub fn begin_irrevocable(&self) -> Txn<'_> {
        let guard = self
            .commit_gate
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
        Txn {
            space: self,
            rv: self.clock.load(Ordering::Acquire),
            reads: Vec::new(),
            writes: HashMap::new(),
            irrevocable: Some(guard),
        }
    }

    /// Records an abort for the global statistics (used by explicit
    /// begin/commit drivers; [`Space::atomically`] does this itself).
    pub fn note_abort(&self) {
        self.aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a commit for the global statistics (used by explicit
    /// begin/commit drivers).
    pub fn note_commit(&self) {
        self.commits.fetch_add(1, Ordering::Relaxed);
    }

    /// Like [`Space::note_abort`], additionally notifying the observer
    /// with the driver's thread token.
    pub fn note_abort_by(&self, token: u64) {
        self.note_abort();
        self.with_observer(|o| o.txn_abort(token));
    }

    /// Like [`Space::note_commit`], additionally notifying the observer
    /// with the driver's thread token and the committed read/write set
    /// sizes.
    pub fn note_commit_by(&self, token: u64, reads: u64, writes: u64) {
        self.note_commit();
        self.with_observer(|o| o.txn_commit(token, reads, writes));
    }

    /// Like [`Space::try_begin_irrevocable`], additionally notifying
    /// the observer (on success) with the driver's thread token.
    pub fn try_begin_irrevocable_by(&self, token: u64) -> Option<Txn<'_>> {
        let txn = self.try_begin_irrevocable()?;
        self.with_observer(|o| o.txn_fallback(token));
        Some(txn)
    }

    /// Runs `body` transactionally, retrying on conflict until it
    /// commits. The closure must be re-executable: all its side effects
    /// should go through the transaction (the paper's argument for
    /// pessimistic sections is precisely that irreversible actions
    /// cannot).
    pub fn atomically<T>(
        &self,
        body: impl FnMut(&mut Txn<'_>) -> Result<T, TxnError>,
    ) -> (T, TxnStats) {
        self.atomically_budgeted(u64::MAX, body)
    }

    /// Like [`Space::atomically`], but after `budget` aborted attempts
    /// the transaction escalates to irrevocable global-mode execution
    /// (the graceful-degradation ladder's last rung), which cannot
    /// abort. Inside an irrevocable attempt `body` sees a transaction
    /// whose reads are infallible; returning `Err` from there is treated
    /// as a retryable condition and re-enters the irrevocable loop.
    pub fn atomically_budgeted<T>(
        &self,
        budget: u64,
        mut body: impl FnMut(&mut Txn<'_>) -> Result<T, TxnError>,
    ) -> (T, TxnStats) {
        let mut stats = TxnStats::default();
        let mut backoff = Backoff::new();
        loop {
            let mut txn = if stats.aborts >= budget {
                match self.try_begin_irrevocable() {
                    Some(t) => t,
                    None => {
                        backoff.spin();
                        continue;
                    }
                }
            } else {
                self.begin()
            };
            let irrevocable = txn.is_irrevocable();
            if let Ok(out) = body(&mut txn) {
                if txn.commit().is_ok() {
                    stats.commits = 1;
                    stats.fallbacks = u64::from(irrevocable);
                    self.commits.fetch_add(1, Ordering::Relaxed);
                    return (out, stats);
                }
            }
            stats.aborts += 1;
            self.aborts.fetch_add(1, Ordering::Relaxed);
            backoff.spin();
        }
    }
}

/// An in-flight transaction.
pub struct Txn<'s> {
    space: &'s Space,
    rv: u64,
    reads: Vec<usize>,
    writes: HashMap<usize, i64>,
    /// `Some` while this transaction runs irrevocably; the guard holds
    /// [`Space::commit_gate`] exclusively, keeping every optimistic
    /// commit out until the transaction finishes.
    irrevocable: Option<std::sync::RwLockWriteGuard<'s, ()>>,
}

impl std::fmt::Debug for Txn<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Txn")
            .field("rv", &self.rv)
            .field("reads", &self.reads.len())
            .field("writes", &self.writes.len())
            .field("irrevocable", &self.irrevocable.is_some())
            .finish()
    }
}

impl Txn<'_> {
    /// Transactional read.
    ///
    /// # Errors
    ///
    /// Returns [`TxnError`] when the cell is locked or was written after
    /// this transaction began — the caller should propagate it so the
    /// transaction retries.
    pub fn read(&mut self, i: usize) -> Result<i64, TxnError> {
        if let Some(&v) = self.writes.get(&i) {
            return Ok(v);
        }
        if self.irrevocable.is_some() {
            // No optimistic commit can run while we hold the gate, and
            // our own writes go straight to the cells, so a direct load
            // is always consistent.
            return Ok(self.space.cells[i].value.load(Ordering::Acquire));
        }
        let cell = &self.space.cells[i];
        let pre = cell.vlock.load(Ordering::Acquire);
        let value = cell.value.load(Ordering::Acquire);
        let post = cell.vlock.load(Ordering::Acquire);
        if pre != post || post & LOCK_BIT != 0 || (post >> 1) > self.rv {
            return Err(TxnError);
        }
        self.reads.push(i);
        Ok(value)
    }

    /// Number of buffered writes (used by cost models).
    pub fn write_set_len(&self) -> usize {
        self.writes.len()
    }

    /// Number of recorded reads (used by cost models: commit-time
    /// validation is linear in the read set).
    pub fn read_set_len(&self) -> usize {
        self.reads.len()
    }

    /// True while this transaction runs in irrevocable global mode.
    pub fn is_irrevocable(&self) -> bool {
        self.irrevocable.is_some()
    }

    /// Introspection hook for online monitors: is cell `i` covered by
    /// this transaction — buffered in the write set, validated in the
    /// read set, or executed under the irrevocable gate (which excludes
    /// every concurrent writer, so any access is trivially covered)?
    /// The STM analogue of `mglock::Session::held_modes`.
    pub fn is_tracked(&self, i: usize) -> bool {
        self.irrevocable.is_some() || self.writes.contains_key(&i) || self.reads.contains(&i)
    }

    /// Transactional write (buffered until commit in both modes — an
    /// irrevocable transaction still publishes its whole write set
    /// atomically under the lock-bit protocol, or concurrent optimistic
    /// readers could see a torn multi-cell snapshot).
    pub fn write(&mut self, i: usize, v: i64) {
        assert!(i < self.space.cells.len(), "cell {i} out of range");
        self.writes.insert(i, v);
    }

    /// Attempts to commit.
    ///
    /// # Errors
    ///
    /// Returns [`TxnError`] when write-set locking or read-set
    /// validation fails; the caller should roll back its local state
    /// and retry from [`Space::begin`].
    pub fn commit(self) -> Result<(), TxnError> {
        let space = self.space;
        if self.writes.is_empty() {
            // Read-only transactions validated every read against rv
            // (or, when irrevocable, read under exclusion).
            return Ok(());
        }
        if self.irrevocable.is_some() {
            // The exclusively-held gate means no optimistic commit or
            // other irrevocable transaction is writing: locking cannot
            // fail and the read set needs no validation. The usual TL2
            // order (lock all, bump clock, write back + release) still
            // matters so optimistic readers see lock bits or a too-new
            // version instead of a partial write-back.
            for &i in self.writes.keys() {
                let cell = &space.cells[i];
                let cur = cell.vlock.load(Ordering::Acquire);
                debug_assert_eq!(cur & LOCK_BIT, 0, "no other writer while the gate is held");
                cell.vlock.store(cur | LOCK_BIT, Ordering::Release);
            }
            let wv = space.clock.fetch_add(1, Ordering::AcqRel) + 1;
            for (&i, &val) in &self.writes {
                let cell = &space.cells[i];
                cell.value.store(val, Ordering::Release);
                cell.vlock.store(wv << 1, Ordering::Release);
            }
            // Dropping `self` releases the gate.
            return Ok(());
        }
        // Exclude any irrevocable transaction for the commit's duration;
        // if one is in flight (or starting), abort rather than block —
        // blocking here would wedge cooperative schedulers.
        let _gate = match space.commit_gate.try_read() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return Err(TxnError),
        };
        // Lock the write set in address order (bounded spin, else abort).
        let mut addrs: Vec<usize> = self.writes.keys().copied().collect();
        addrs.sort_unstable();
        let mut held: Vec<(usize, u64)> = Vec::with_capacity(addrs.len());
        let unlock_held = |held: &[(usize, u64)]| {
            for &(j, old) in held {
                space.cells[j].vlock.store(old, Ordering::Release);
            }
        };
        for &i in &addrs {
            let cell = &space.cells[i];
            let mut ok = false;
            for _ in 0..64 {
                let cur = cell.vlock.load(Ordering::Acquire);
                if cur & LOCK_BIT == 0
                    && (cur >> 1) <= self.rv
                    && cell
                        .vlock
                        .compare_exchange(cur, cur | LOCK_BIT, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                {
                    held.push((i, cur));
                    ok = true;
                    break;
                }
                std::hint::spin_loop();
            }
            if !ok {
                unlock_held(&held);
                return Err(TxnError);
            }
        }
        // Advance the clock; wv is this transaction's version.
        let wv = space.clock.fetch_add(1, Ordering::AcqRel) + 1;
        // Validate the read set (skippable when rv + 1 == wv: no one
        // else committed in between — the TL2 fast path).
        if wv != self.rv + 1 {
            for &i in &self.reads {
                let v = space.cells[i].vlock.load(Ordering::Acquire);
                let locked_by_other = v & LOCK_BIT != 0 && !self.writes.contains_key(&i);
                if locked_by_other || (v >> 1) > self.rv {
                    unlock_held(&held);
                    return Err(TxnError);
                }
            }
        }
        // Write back and release with the new version.
        for (&i, &val) in &self.writes {
            let cell = &space.cells[i];
            cell.value.store(val, Ordering::Release);
            cell.vlock.store(wv << 1, Ordering::Release);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn read_your_own_writes() {
        let s = Space::new(4);
        s.atomically(|t| {
            t.write(0, 7);
            assert_eq!(t.read(0)?, 7);
            Ok(())
        });
        assert_eq!(s.read_direct(0), 7);
    }

    #[test]
    fn counter_increments_linearize() {
        let s = Arc::new(Space::new(1));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    s.atomically(|t| {
                        let v = t.read(0)?;
                        t.write(0, v + 1);
                        Ok(())
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.read_direct(0), 8 * 500);
    }

    #[test]
    fn bank_transfer_preserves_total() {
        let s = Arc::new(Space::new(8));
        for i in 0..8 {
            s.write_direct(i, 100);
        }
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let mut x = t.wrapping_mul(2654435761);
                for _ in 0..2000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let from = (x >> 33) as usize % 8;
                    let to = (x >> 21) as usize % 8;
                    s.atomically(|txn| {
                        let a = txn.read(from)?;
                        let b = txn.read(to)?;
                        if a > 0 {
                            txn.write(from, a - 1);
                            if from == to {
                                txn.write(to, a);
                            } else {
                                txn.write(to, b + 1);
                            }
                        }
                        Ok(())
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: i64 = (0..8).map(|i| s.read_direct(i)).sum();
        assert_eq!(total, 800, "transfers conserve the total");
    }

    #[test]
    fn readers_see_consistent_snapshots() {
        // Writer keeps x == y; readers must never observe x != y.
        let s = Arc::new(Space::new(2));
        let stop = Arc::new(AtomicU64::new(0));
        let w = {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut v = 0i64;
                while stop.load(Ordering::Relaxed) == 0 {
                    v += 1;
                    s.atomically(|t| {
                        t.write(0, v);
                        t.write(1, v);
                        Ok(())
                    });
                }
            })
        };
        let mut readers = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            readers.push(std::thread::spawn(move || {
                for _ in 0..5000 {
                    let ((a, b), _) = s.atomically(|t| Ok((t.read(0)?, t.read(1)?)));
                    assert_eq!(a, b, "torn snapshot observed");
                }
            }));
        }
        for r in readers {
            r.join().unwrap();
        }
        stop.store(1, Ordering::Relaxed);
        w.join().unwrap();
    }

    #[test]
    fn conflicting_transactions_abort_and_retry() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Barrier;
        let s = Arc::new(Space::new(1));
        let barrier = Arc::new(Barrier::new(2));
        let h = {
            let s = Arc::clone(&s);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let first = AtomicBool::new(true);
                let (_, st) = s.atomically(|t| {
                    let v = t.read(0)?;
                    if first.swap(false, Ordering::SeqCst) {
                        barrier.wait(); // let the main thread commit…
                        barrier.wait(); // …and finish before we try to.
                    }
                    t.write(0, v + 1);
                    Ok(())
                });
                st
            })
        };
        barrier.wait();
        s.atomically(|t| {
            t.write(0, 99);
            Ok(())
        });
        barrier.wait();
        let st = h.join().unwrap();
        assert!(st.aborts >= 1, "the interleaved write must force an abort");
        assert_eq!(s.read_direct(0), 100, "the retry read the committed value");
    }

    #[test]
    fn stats_accumulate_globally() {
        let s = Space::new(2);
        for _ in 0..5 {
            s.atomically(|t| {
                let v = t.read(0)?;
                t.write(1, v);
                Ok(())
            });
        }
        assert_eq!(s.global_stats().commits, 5);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut b = Backoff::with_cap(8);
        assert_eq!(b.spins(), 1);
        assert_eq!(b.spins(), 2);
        assert_eq!(b.spins(), 4);
        assert_eq!(b.spins(), 8);
        assert_eq!(b.spins(), 8, "spin count saturates at the cap");
        b.reset();
        assert_eq!(b.spins(), 1, "reset restarts the ladder");
        let mut d = Backoff::new();
        for _ in 0..40 {
            assert!(d.spins() <= Backoff::DEFAULT_CAP);
        }
        assert_eq!(d.spins(), Backoff::DEFAULT_CAP);
    }

    #[test]
    fn abort_budget_escalates_to_irrevocable() {
        let s = Space::new(2);
        let (out, st) = s.atomically_budgeted(4, |t| {
            if t.is_irrevocable() {
                let v = t.read(0)?;
                t.write(0, v + 7);
                Ok(42)
            } else {
                // Simulate a transaction that always conflicts.
                Err(TxnError)
            }
        });
        assert_eq!(out, 42);
        assert_eq!(st.aborts, 4, "exactly the budget is spent optimistically");
        assert_eq!(st.fallbacks, 1, "then the fallback engages");
        assert_eq!(s.read_direct(0), 7);
        assert_eq!(s.global_stats().fallbacks, 1);
    }

    #[test]
    fn irrevocable_writer_keeps_optimistic_readers_consistent() {
        // Same invariant as readers_see_consistent_snapshots, but the
        // writer runs irrevocably: its write-through protocol must still
        // make torn reads impossible for optimistic readers.
        let s = Arc::new(Space::new(2));
        let stop = Arc::new(AtomicU64::new(0));
        let w = {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut v = 0i64;
                while stop.load(Ordering::Relaxed) == 0 {
                    v += 1;
                    let mut t = s.begin_irrevocable();
                    t.write(0, v);
                    t.write(1, v);
                    t.commit().unwrap();
                    s.note_commit();
                }
            })
        };
        let mut readers = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            readers.push(std::thread::spawn(move || {
                for _ in 0..3000 {
                    let ((a, b), _) = s.atomically(|t| Ok((t.read(0)?, t.read(1)?)));
                    assert_eq!(a, b, "torn snapshot observed past an irrevocable writer");
                }
            }));
        }
        for r in readers {
            r.join().unwrap();
        }
        stop.store(1, Ordering::Relaxed);
        w.join().unwrap();
        assert!(s.global_stats().fallbacks > 0);
    }

    #[test]
    fn irrevocable_reads_see_own_writes() {
        let s = Space::new(4);
        let mut t = s.begin_irrevocable();
        t.write(2, 9);
        assert_eq!(t.read(2).unwrap(), 9);
        t.commit().unwrap();
        assert_eq!(s.read_direct(2), 9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_write_panics() {
        let s = Space::new(1);
        s.atomically(|t| {
            t.write(9, 1);
            Ok(())
        });
    }
}
