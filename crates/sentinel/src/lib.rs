//! # sentinel — the online lockset soundness monitor
//!
//! The inference guarantee (Theorem 1) only holds if the locks the
//! runtime actually takes license every in-section access. The trace
//! validator (`trace::lockset`) checks that *post hoc*; this crate
//! evaluates the same Fig. 6 licensing predicate **inline**, against a
//! worker's live held-mode set (`mglock::Session::held_modes`), on
//! each in-section access — sampling-capable, so production runs can
//! trade coverage for overhead.
//!
//! A violation does not abort the run. The sentinel records a
//! structured [`Violation`] (section, access, missing mode, held
//! set), lets the section complete, and feeds a **per-section
//! quarantine ladder**:
//!
//! * first offense demotes the section to the trivially sound global
//!   scheme (`lockscheme::SchemeConfig::trivially_sound` — at
//!   runtime, the worker swaps the section's plan for the global
//!   lock);
//! * a probation counter re-admits the original fine-grained
//!   configuration after N consecutive clean executions;
//! * a healed section that re-offends gets an exponentially longer
//!   probation (flap damping), capped.
//!
//! Every ladder transition is reported back to the caller so the
//! worker can emit a `["qr", …]` trace event — replay and the corpus
//! digests capture quarantine behavior deterministically. Under the
//! virtual-time scheduler exactly one worker runs at a time, so the
//! mutex-serialized transitions happen in a deterministic order.

use mglock::{FineAddr, Mode, NodeKey};
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Tuning of one [`Sentinel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SentinelConfig {
    /// Check every `sample_every`-th in-section access per worker
    /// (1 = check every access, i.e. sampling off; larger values
    /// sample; 0 disables the access checks entirely while keeping
    /// the quarantine bookkeeping live).
    pub sample_every: u32,
    /// Consecutive clean executions a quarantined section must serve
    /// before it is re-admitted.
    pub probation: u32,
    /// Probation growth factor when a healed section re-offends
    /// (flap damping).
    pub flap_multiplier: u32,
    /// Upper bound the damped probation saturates at.
    pub max_probation: u32,
}

impl Default for SentinelConfig {
    fn default() -> SentinelConfig {
        SentinelConfig {
            sample_every: 1,
            probation: 4,
            flap_multiplier: 2,
            max_probation: 64,
        }
    }
}

impl SentinelConfig {
    /// Should the `n`-th in-section access of a worker be checked?
    /// (`n` is a per-worker monotone counter, so the decision is
    /// deterministic under the virtual-time scheduler.)
    pub fn should_check(&self, n: u64) -> bool {
        self.sample_every != 0 && n.is_multiple_of(u64::from(self.sample_every))
    }

    /// The production sampling preset. The `sentinel-overhead --check`
    /// gate bounds the fully armed (`sample_every: 1`) monitor at 2×
    /// wall clock, i.e. the per-access check costs at most as much as
    /// the access itself; sampling 1-in-8 therefore bounds the preset's
    /// overhead at roughly 1/8 of that worst case (≈1.125×) while the
    /// per-worker counter keeps every 8th access — not a biased prefix
    /// — under watch. Quarantine bookkeeping is unchanged.
    pub fn sampled_production() -> SentinelConfig {
        SentinelConfig {
            sample_every: 8,
            ..SentinelConfig::default()
        }
    }
}

/// One in-section access the live held-mode set did not license.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Violation {
    /// The (outermost) section the access executed under.
    pub section: u32,
    /// The accessing worker.
    pub tid: u32,
    /// The accessed heap cell.
    pub addr: u64,
    /// Write or read.
    pub write: bool,
    /// Virtual time of the offending access. Part of the canonical
    /// ledger key `(clock, tid, seq)`: the virtual clock is a property
    /// of the schedule, not of which OS thread got the mutex first, so
    /// sorting by it makes [`Sentinel::violations`] byte-identical at
    /// every analysis/eval thread count.
    pub clock: u64,
    /// The worker's in-section access counter at the offense — breaks
    /// `(clock, tid)` ties (one worker, several accesses per step) and
    /// is unique per `(tid, seq)` by construction.
    pub seq: u64,
    /// The weakest Fig. 6 mode that would have licensed the effect
    /// (`X` for writes, `S` for reads) — what the inference should
    /// have planned on some covering node.
    pub missing: Mode,
    /// The modes actually held at the access, for diagnosis.
    pub held: Vec<(NodeKey, Mode)>,
}

impl Violation {
    /// Builds a violation record, deriving the missing mode from the
    /// effect.
    pub fn new(
        section: u32,
        tid: u32,
        addr: u64,
        write: bool,
        clock: u64,
        seq: u64,
        held: Vec<(NodeKey, Mode)>,
    ) -> Violation {
        Violation {
            section,
            tid,
            addr,
            write,
            clock,
            seq,
            missing: if write { Mode::X } else { Mode::S },
            held,
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tid {}: unlicensed {} of cell {} in section {} (missing {:?}, held {:?})",
            self.tid,
            if self.write { "write" } else { "read" },
            self.addr,
            self.section,
            self.missing,
            self.held
        )
    }
}

/// One quarantine-ladder transition, in the order it happened.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LadderEvent {
    /// The section whose effective configuration changed.
    pub section: u32,
    /// `false` = demoted to the global scheme, `true` = re-admitted.
    pub healed: bool,
    /// The probation term attached: executions to serve (demotion) or
    /// just served (heal).
    pub probation: u32,
}

#[derive(Clone, Copy, Debug)]
enum Health {
    Healthy,
    Quarantined {
        /// Clean executions still to serve.
        remaining: u32,
        /// The full term, for the heal event and defensive resets.
        probation: u32,
    },
}

#[derive(Debug)]
struct SectionState {
    health: Health,
    /// The term the *next* demotion will impose. Starts at the
    /// configured probation and grows by the flap multiplier on every
    /// demotion, so a section that heals and re-offends serves an
    /// exponentially longer sentence (saturating at the cap).
    next_probation: u32,
}

/// A repaired lock scheme staged for one section. Installed dormant;
/// the worker switches the section onto it only once the section has
/// served out its quarantine (the heal is the proof the run is back in
/// a known-clean state to cut over in).
#[derive(Clone, Copy, Debug)]
struct RepairState {
    /// Index of the admitted repair candidate, for the `["ri", …]`
    /// ledger.
    candidate: u32,
    /// Set at heal time; a violation under an active repair revokes it.
    active: bool,
}

#[derive(Default)]
struct State {
    sections: BTreeMap<u32, SectionState>,
    log: Vec<Violation>,
    history: Vec<LadderEvent>,
    repairs: BTreeMap<u32, RepairState>,
    /// Totals live under the same mutex as the ledger they summarize:
    /// the old relaxed atomics could be read torn against `log`
    /// (counter bumped, entry not yet pushed), which made reports
    /// thread-count-dependent.
    violations: u64,
    quarantined: u64,
    healed: u64,
}

/// The in-process monitor. One per machine; workers share it.
pub struct Sentinel {
    cfg: SentinelConfig,
    inner: Mutex<State>,
}

impl std::fmt::Debug for Sentinel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.lock();
        f.debug_struct("Sentinel")
            .field("cfg", &self.cfg)
            .field("violations", &st.violations)
            .field("quarantined", &st.quarantined)
            .field("healed", &st.healed)
            .finish()
    }
}

/// Does any grant in `held` license an access of `addr` with the given
/// effect? Delegates to the Fig. 6 core shared with the post-hoc trace
/// validator, so online and offline verdicts can never diverge.
///
/// `extent` resolves the accessed cell's allocation `(base, points-to
/// class)`, when known. It is called lazily — at most once, and only if
/// a Pts- or Range-granular grant survives the mode filter — because
/// resolving it costs an allocation-table lookup on the interpreter's
/// hot path while the common grants (Root, exact cell) decide without
/// it.
pub fn licensed(
    held: impl Iterator<Item = (NodeKey, Mode)>,
    addr: u64,
    write: bool,
    extent: impl FnOnce() -> Option<(u64, u32)>,
) -> bool {
    let mut held = held;
    let mut extent = Some(extent);
    let mut memo = None;
    held.any(|(node, mode)| {
        if !trace::lockset::mode_grants(mode, write) {
            return false;
        }
        let needs_extent = matches!(node, NodeKey::Pts(_) | NodeKey::Fine(_, FineAddr::Range(_)));
        let ext = if needs_extent {
            *memo.get_or_insert_with(|| extent.take().and_then(|f| f()))
        } else {
            None
        };
        trace::lockset::licenses(node, mode, addr, write, ext)
    })
}

impl Sentinel {
    /// Creates a monitor with the given tuning.
    pub fn new(cfg: SentinelConfig) -> Sentinel {
        Sentinel {
            cfg,
            inner: Mutex::new(State::default()),
        }
    }

    /// The active tuning.
    pub fn config(&self) -> SentinelConfig {
        self.cfg
    }

    /// Is `section` currently serving a quarantine (so the worker must
    /// plan the trivially sound global scheme instead of its inferred
    /// locks)?
    pub fn is_quarantined(&self, section: u32) -> bool {
        matches!(
            self.inner.lock().sections.get(&section).map(|s| s.health),
            Some(Health::Quarantined { .. })
        )
    }

    /// Records an unlicensed access. Returns the demotion transition
    /// when this violation quarantines the section (first offense of a
    /// healthy section); `None` when the section is already serving.
    pub fn report_violation(&self, v: Violation) -> Option<LadderEvent> {
        let mut st = self.inner.lock();
        st.violations += 1;
        let section = v.section;
        st.log.push(v);
        let cfg = self.cfg;
        let sec = st.sections.entry(section).or_insert_with(|| SectionState {
            health: Health::Healthy,
            next_probation: cfg.probation.max(1),
        });
        match sec.health {
            Health::Quarantined { probation, .. } => {
                // A violation slipped through while serving (sampling
                // caught an access before the demotion's global plan
                // took effect, or a nested enter wiped the worker's
                // dirty flag): restart the term in place. No new
                // ladder event and no `quarantined` bump — the section
                // is already demoted, it just has not earned credit.
                sec.health = Health::Quarantined {
                    remaining: probation,
                    probation,
                };
                None
            }
            Health::Healthy => {
                let probation = sec.next_probation;
                sec.health = Health::Quarantined {
                    remaining: probation,
                    probation,
                };
                sec.next_probation = probation
                    .saturating_mul(cfg.flap_multiplier.max(1))
                    .min(cfg.max_probation.max(probation));
                st.quarantined += 1;
                let ev = LadderEvent {
                    section,
                    healed: false,
                    probation,
                };
                st.history.push(ev);
                Some(ev)
            }
        }
    }

    /// Notes that one outermost execution of `section` finished,
    /// `clean` iff the sentinel saw no violation during it. Returns
    /// the heal transition when this execution completes the
    /// section's probation.
    pub fn section_closed(&self, section: u32, clean: bool) -> Option<LadderEvent> {
        let mut st = self.inner.lock();
        let sec = st.sections.get_mut(&section)?;
        let Health::Quarantined {
            remaining,
            probation,
        } = sec.health
        else {
            return None;
        };
        if !clean {
            // A violation slipped through while quarantined (e.g. the
            // demotion landed mid-execution): restart the term rather
            // than credit a dirty run.
            sec.health = Health::Quarantined {
                remaining: probation,
                probation,
            };
            return None;
        }
        let remaining = remaining.saturating_sub(1);
        if remaining > 0 {
            sec.health = Health::Quarantined {
                remaining,
                probation,
            };
            return None;
        }
        sec.health = Health::Healthy;
        st.healed += 1;
        let ev = LadderEvent {
            section,
            healed: true,
            probation,
        };
        st.history.push(ev);
        Some(ev)
    }

    /// Stages a repaired scheme for `section`. The repair lies dormant
    /// until the section heals ([`Sentinel::activate_repair`]); a
    /// re-install overwrites any previous repair for the section.
    pub fn install_repair(&self, section: u32, candidate: u32) {
        self.inner.lock().repairs.insert(
            section,
            RepairState {
                candidate,
                active: false,
            },
        );
    }

    /// The candidate index of `section`'s *active* repair, if the
    /// section has healed onto one — the worker plans the repaired
    /// specs instead of the seed scheme while this is `Some`.
    pub fn active_repair(&self, section: u32) -> Option<u32> {
        let st = self.inner.lock();
        let r = st.repairs.get(&section)?;
        r.active.then_some(r.candidate)
    }

    /// Switches a healed `section` onto its staged repair. Called by
    /// the worker when [`Sentinel::section_closed`] returns a heal
    /// event; returns the candidate index so the worker can ledger
    /// `["ri", section, candidate, 1]`. `None` when no repair is
    /// staged (plain heal back onto the seed scheme) or it is already
    /// active.
    pub fn activate_repair(&self, section: u32) -> Option<u32> {
        let mut st = self.inner.lock();
        let r = st.repairs.get_mut(&section)?;
        if r.active {
            return None;
        }
        r.active = true;
        Some(r.candidate)
    }

    /// Withdraws `section`'s active repair — the repaired scheme
    /// itself drew a violation, so the section falls back to the
    /// ordinary demote→probation→seed ladder. Returns the revoked
    /// candidate index for the `["ri", section, candidate, 0]` ledger
    /// entry; `None` when no repair was active.
    pub fn revoke_repair(&self, section: u32) -> Option<u32> {
        let mut st = self.inner.lock();
        let r = st.repairs.get(&section)?;
        if !r.active {
            return None;
        }
        let candidate = r.candidate;
        st.repairs.remove(&section);
        Some(candidate)
    }

    /// Every recorded violation, in the canonical `(clock, tid, seq)`
    /// ledger order. Arrival order depends on which worker thread wins
    /// the mutex; the canonical key depends only on the deterministic
    /// schedule, so re-inference input and reports are byte-identical
    /// at every thread count.
    pub fn violations(&self) -> Vec<Violation> {
        let mut log = self.inner.lock().log.clone();
        log.sort_by_key(|v| (v.clock, v.tid, v.seq));
        log
    }

    /// Every ladder transition, in order.
    pub fn history(&self) -> Vec<LadderEvent> {
        self.inner.lock().history.clone()
    }

    /// Sections currently serving a quarantine, ascending.
    pub fn quarantined_sections(&self) -> Vec<u32> {
        self.inner
            .lock()
            .sections
            .iter()
            .filter(|(_, s)| matches!(s.health, Health::Quarantined { .. }))
            .map(|(&id, _)| id)
            .collect()
    }

    /// Total unlicensed accesses recorded.
    pub fn sentinel_violations(&self) -> u64 {
        self.inner.lock().violations
    }

    /// Total demotion transitions.
    pub fn sections_quarantined(&self) -> u64 {
        self.inner.lock().quarantined
    }

    /// Total heal transitions.
    pub fn sections_healed(&self) -> u64 {
        self.inner.lock().healed
    }

    /// Folds the currently quarantined sections into `map` via
    /// [`lockscheme::ConfigMap::demote_to_global`] — the offline
    /// corrective path: re-inferring under the demoted map yields a
    /// program whose offending sections take the global lock, matching
    /// what the online override already does at plan time.
    pub fn demote_map(&self, map: &mut lockscheme::ConfigMap) {
        for section in self.quarantined_sections() {
            map.demote_to_global(section);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockscheme::{ConfigMap, SchemeConfig};

    fn violation(section: u32) -> Violation {
        Violation::new(
            section,
            0,
            42,
            true,
            0,
            0,
            vec![(NodeKey::Pts(1), Mode::Ix)],
        )
    }

    #[test]
    fn licensed_agrees_with_the_validator_core() {
        let fine = NodeKey::Fine(1, FineAddr::Cell(42));
        // X licenses the write…
        assert!(licensed([(fine, Mode::X)].into_iter(), 42, true, || None));
        // …S does not, and intention modes license nothing.
        assert!(!licensed([(fine, Mode::S)].into_iter(), 42, true, || None));
        assert!(!licensed(
            [(NodeKey::Pts(1), Mode::Ix)].into_iter(),
            42,
            true,
            || Some((40, 1))
        ));
        // Root covers everything; Pts covers by class.
        assert!(licensed(
            [(NodeKey::Root, Mode::X)].into_iter(),
            7,
            true,
            || None
        ));
        assert!(licensed(
            [(NodeKey::Pts(3), Mode::S)].into_iter(),
            7,
            false,
            || Some((0, 3))
        ));
        assert!(!licensed(
            [(NodeKey::Pts(3), Mode::S)].into_iter(),
            7,
            false,
            || Some((0, 4))
        ));
    }

    #[test]
    fn extent_is_resolved_lazily_and_at_most_once() {
        use std::cell::Cell;
        let calls = Cell::new(0u32);
        let counting = || {
            calls.set(calls.get() + 1);
            Some((40, 1))
        };
        // An exact-cell grant decides without the extent.
        let fine = NodeKey::Fine(1, FineAddr::Cell(42));
        assert!(licensed([(fine, Mode::X)].into_iter(), 42, true, counting));
        assert_eq!(calls.get(), 0);
        // Intention modes are filtered before the extent is touched.
        assert!(!licensed(
            [(NodeKey::Pts(1), Mode::Ix)].into_iter(),
            42,
            true,
            counting
        ));
        assert_eq!(calls.get(), 0);
        // Two extent-hungry grants share one resolution.
        assert!(!licensed(
            [(NodeKey::Pts(7), Mode::X), (NodeKey::Pts(8), Mode::X)].into_iter(),
            42,
            true,
            counting
        ));
        assert_eq!(calls.get(), 1);
    }

    #[test]
    fn first_offense_quarantines_then_probation_heals() {
        let s = Sentinel::new(SentinelConfig {
            probation: 3,
            ..SentinelConfig::default()
        });
        assert!(!s.is_quarantined(5));
        let ev = s.report_violation(violation(5)).expect("demotes");
        assert_eq!(
            ev,
            LadderEvent {
                section: 5,
                healed: false,
                probation: 3
            }
        );
        assert!(s.is_quarantined(5));
        // Further violations while serving do not re-demote.
        assert!(s.report_violation(violation(5)).is_none());
        assert_eq!(s.sentinel_violations(), 2);
        assert_eq!(s.sections_quarantined(), 1);
        // Two clean executions: still serving.
        assert!(s.section_closed(5, true).is_none());
        assert!(s.section_closed(5, true).is_none());
        assert!(s.is_quarantined(5));
        // The third completes the term.
        let heal = s.section_closed(5, true).expect("heals");
        assert_eq!(
            heal,
            LadderEvent {
                section: 5,
                healed: true,
                probation: 3
            }
        );
        assert!(!s.is_quarantined(5));
        assert_eq!(s.sections_healed(), 1);
    }

    #[test]
    fn flap_damping_grows_the_term_exponentially_and_saturates() {
        let s = Sentinel::new(SentinelConfig {
            probation: 4,
            flap_multiplier: 2,
            max_probation: 10,
            ..SentinelConfig::default()
        });
        let terms: Vec<u32> = (0..4)
            .map(|_| {
                let ev = s.report_violation(violation(1)).expect("demotes");
                for _ in 0..ev.probation {
                    s.section_closed(1, true);
                }
                assert!(!s.is_quarantined(1));
                ev.probation
            })
            .collect();
        assert_eq!(terms, vec![4, 8, 10, 10], "doubles, then caps");
        assert_eq!(s.history().iter().filter(|e| !e.healed).count(), 4);
        assert_eq!(s.history().iter().filter(|e| e.healed).count(), 4);
    }

    #[test]
    fn dirty_executions_restart_the_term() {
        let s = Sentinel::new(SentinelConfig {
            probation: 2,
            ..SentinelConfig::default()
        });
        s.report_violation(violation(9)).expect("demotes");
        assert!(s.section_closed(9, true).is_none());
        // One execution was dirty: progress resets.
        assert!(s.section_closed(9, false).is_none());
        assert!(s.section_closed(9, true).is_none());
        let heal = s.section_closed(9, true).expect("full term served");
        assert!(heal.healed);
    }

    #[test]
    fn probation_violation_restarts_the_term_without_new_ladder_events() {
        let s = Sentinel::new(SentinelConfig {
            probation: 3,
            ..SentinelConfig::default()
        });
        s.report_violation(violation(7)).expect("demotes");
        // Two clean executions leave one to serve…
        assert!(s.section_closed(7, true).is_none());
        assert!(s.section_closed(7, true).is_none());
        // …then a violation lands during probation (e.g. a nested
        // enter wiped the worker's dirty flag, so the close below
        // reports clean). It must restart the term itself, without
        // re-demoting or double-counting.
        assert!(s.report_violation(violation(7)).is_none());
        assert_eq!(s.sections_quarantined(), 1);
        assert!(
            s.section_closed(7, true).is_none(),
            "the poisoned execution must not complete the term"
        );
        // The full term was owed again as of the violation; only its
        // last close heals.
        assert!(s.section_closed(7, true).is_none());
        let heal = s.section_closed(7, true).expect("term served anew");
        assert!(heal.healed);
        assert_eq!(s.sections_quarantined(), 1);
        assert_eq!(s.sections_healed(), 1);
        assert_eq!(
            s.history().len(),
            2,
            "exactly one demote and one heal, no spurious events"
        );
    }

    #[test]
    fn ledger_is_sorted_by_clock_tid_seq_not_arrival() {
        let s = Sentinel::new(SentinelConfig::default());
        let v = |tid: u32, clock: u64, seq: u64| {
            Violation::new(1, tid, 42, true, clock, seq, Vec::new())
        };
        // Arrival order scrambled relative to the schedule order.
        s.report_violation(v(2, 9, 0));
        s.report_violation(v(0, 3, 5));
        s.report_violation(v(1, 3, 0));
        s.report_violation(v(0, 3, 2));
        let keys: Vec<(u64, u32, u64)> = s
            .violations()
            .iter()
            .map(|v| (v.clock, v.tid, v.seq))
            .collect();
        assert_eq!(keys, vec![(3, 0, 2), (3, 0, 5), (3, 1, 0), (9, 2, 0)]);
    }

    #[test]
    fn repairs_activate_on_heal_and_revoke_on_reoffense() {
        let s = Sentinel::new(SentinelConfig {
            probation: 1,
            ..SentinelConfig::default()
        });
        s.install_repair(4, 2);
        // Dormant until the section heals.
        assert_eq!(s.active_repair(4), None);
        s.report_violation(violation(4)).expect("demotes");
        assert_eq!(s.active_repair(4), None);
        s.section_closed(4, true).expect("heals");
        assert_eq!(s.activate_repair(4), Some(2));
        assert_eq!(s.active_repair(4), Some(2));
        // Activation is edge-triggered: the worker ledgers it once.
        assert_eq!(s.activate_repair(4), None);
        // A violation under the repaired scheme withdraws it…
        s.report_violation(violation(4)).expect("re-demotes");
        assert_eq!(s.revoke_repair(4), Some(2));
        assert_eq!(s.active_repair(4), None);
        // …for good: the next heal (a flap-damped two-execution term)
        // goes back to the seed scheme.
        assert!(s.section_closed(4, true).is_none());
        s.section_closed(4, true).expect("heals again");
        assert_eq!(s.activate_repair(4), None);
        // Revoking when nothing is active is a no-op.
        assert_eq!(s.revoke_repair(4), None);
        // Sections without a staged repair never activate one.
        assert_eq!(s.activate_repair(9), None);
    }

    #[test]
    fn sections_quarantine_independently() {
        let s = Sentinel::new(SentinelConfig::default());
        s.report_violation(violation(1));
        s.report_violation(violation(3));
        assert_eq!(s.quarantined_sections(), vec![1, 3]);
        assert!(!s.is_quarantined(2));
        // Closing a healthy section is a no-op.
        assert!(s.section_closed(2, true).is_none());
    }

    #[test]
    fn demote_map_folds_open_quarantines() {
        let s = Sentinel::new(SentinelConfig::default());
        s.report_violation(violation(2));
        let mut map = ConfigMap::uniform(SchemeConfig::full(9, None));
        s.demote_map(&mut map);
        assert!(map.for_section(2).is_trivially_sound());
        assert!(!map.for_section(0).is_trivially_sound());
    }

    #[test]
    fn sampling_schedule_is_deterministic() {
        let every = SentinelConfig::default();
        assert!(every.should_check(0) && every.should_check(1));
        let off = SentinelConfig {
            sample_every: 0,
            ..SentinelConfig::default()
        };
        assert!(!off.should_check(0));
        let tenth = SentinelConfig {
            sample_every: 10,
            ..SentinelConfig::default()
        };
        assert!(tenth.should_check(0));
        assert!(!tenth.should_check(5));
        assert!(tenth.should_check(10));
    }

    #[test]
    fn sampled_production_preset_samples_one_in_eight() {
        let p = SentinelConfig::sampled_production();
        assert_eq!(p.sample_every, 8);
        assert!(p.should_check(0) && p.should_check(8) && !p.should_check(7));
        // The quarantine ladder tuning is the default's.
        assert_eq!(p.probation, SentinelConfig::default().probation);
        assert_eq!(p.max_probation, SentinelConfig::default().max_probation);
    }
}
