//! Recursive-descent parser for the surface syntax.
//!
//! ```text
//! module  := (struct | global | fn)*
//! struct  := "struct" ident "{" (ident ";")* "}"
//! global  := "global" ident ("," ident)* ";"
//! fn      := "fn" ident "(" params? ")" block
//! stmt    := "let" ident ("=" expr)? ";"
//!          | "atomic" block
//!          | "if" "(" expr ")" block ("else" (block | ifstmt))?
//!          | "while" "(" expr ")" block
//!          | "return" expr? ";" | "break" ";" | "continue" ";"
//!          | block
//!          | lvalue "=" expr ";"
//!          | expr ";"
//! ```
//!
//! Expression precedence (low to high): `||`, `&&`, `==`/`!=`,
//! `<`/`<=`/`>`/`>=`, `+`/`-`, `*`/`/`/`%`, unary (`!` `-` `*` `&`),
//! postfix (`->f`, `[e]`, `(args)`).

use crate::ast::*;
use crate::lexer::{lex, LexError, Spanned, Tok};
use std::fmt;

/// A parse error with a source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            line: e.line,
            message: e.message,
        }
    }
}

/// Parses a whole module from source text.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
///
/// # Examples
///
/// ```
/// let src = "fn main() { let x = 1; return x; }";
/// let module = lir::parser::parse(src)?;
/// assert_eq!(module.funcs.len(), 1);
/// # Ok::<(), lir::parser::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<SModule, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.module()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line(),
            message: msg.into(),
        })
    }

    fn expect(&mut self, t: Tok) -> Result<(), ParseError> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {t}, found {}", self.peek()))
        }
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn module(&mut self) -> Result<SModule, ParseError> {
        let mut m = SModule::default();
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Struct => {
                    self.bump();
                    let name = self.ident()?;
                    self.expect(Tok::LBrace)?;
                    let mut fields = Vec::new();
                    while !self.eat(&Tok::RBrace) {
                        fields.push(self.ident()?);
                        self.expect(Tok::Semi)?;
                    }
                    m.structs.push(SStruct { name, fields });
                }
                Tok::Global => {
                    self.bump();
                    loop {
                        m.globals.push(self.ident()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(Tok::Semi)?;
                }
                Tok::Fn => {
                    let line = self.line();
                    self.bump();
                    let name = self.ident()?;
                    self.expect(Tok::LParen)?;
                    let mut params = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            params.push(self.ident()?);
                            if self.eat(&Tok::RParen) {
                                break;
                            }
                            self.expect(Tok::Comma)?;
                        }
                    }
                    let body = self.block()?;
                    m.funcs.push(SFunc {
                        name,
                        params,
                        body,
                        line,
                    });
                }
                other => return self.err(format!("expected item, found {other}")),
            }
        }
        Ok(m)
    }

    fn block(&mut self) -> Result<Vec<SStmt>, ParseError> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<SStmt, ParseError> {
        match self.peek().clone() {
            Tok::Let => {
                self.bump();
                let name = self.ident()?;
                let init = if self.eat(&Tok::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(Tok::Semi)?;
                Ok(SStmt::Let(name, init))
            }
            Tok::Atomic => {
                self.bump();
                Ok(SStmt::Atomic(self.block()?))
            }
            Tok::If => self.if_stmt(),
            Tok::While => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(SStmt::While(cond, self.block()?))
            }
            Tok::Return => {
                self.bump();
                let val = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::Semi)?;
                Ok(SStmt::Return(val))
            }
            Tok::Break => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(SStmt::Break)
            }
            Tok::Continue => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(SStmt::Continue)
            }
            Tok::LBrace => Ok(SStmt::Block(self.block()?)),
            _ => {
                let e = self.expr()?;
                if self.eat(&Tok::Assign) {
                    let rhs = self.expr()?;
                    self.expect(Tok::Semi)?;
                    if !is_lvalue(&e) {
                        return self.err("left-hand side of `=` is not assignable");
                    }
                    Ok(SStmt::Assign(e, rhs))
                } else {
                    self.expect(Tok::Semi)?;
                    match e {
                        SExpr::Call(..) => Ok(SStmt::Expr(e)),
                        _ => self.err("only calls may be used as expression statements"),
                    }
                }
            }
        }
    }

    fn if_stmt(&mut self) -> Result<SStmt, ParseError> {
        self.expect(Tok::If)?;
        self.expect(Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(Tok::RParen)?;
        let then = self.block()?;
        let els = if self.eat(&Tok::Else) {
            if *self.peek() == Tok::If {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(SStmt::If(cond, then, els))
    }

    fn expr(&mut self) -> Result<SExpr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SExpr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Tok::PipePipe) {
            let rhs = self.and_expr()?;
            lhs = SExpr::Binop(BinKind::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<SExpr, ParseError> {
        let mut lhs = self.eq_expr()?;
        while self.eat(&Tok::AmpAmp) {
            let rhs = self.eq_expr()?;
            lhs = SExpr::Binop(BinKind::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn eq_expr(&mut self) -> Result<SExpr, ParseError> {
        let mut lhs = self.rel_expr()?;
        loop {
            let op = match self.peek() {
                Tok::EqEq => BinKind::Eq,
                Tok::NotEq => BinKind::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.rel_expr()?;
            lhs = SExpr::Binop(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn rel_expr(&mut self) -> Result<SExpr, ParseError> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Lt => BinKind::Lt,
                Tok::Le => BinKind::Le,
                Tok::Gt => BinKind::Gt,
                Tok::Ge => BinKind::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.add_expr()?;
            lhs = SExpr::Binop(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<SExpr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinKind::Add,
                Tok::Minus => BinKind::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = SExpr::Binop(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<SExpr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinKind::Mul,
                Tok::Slash => BinKind::Div,
                Tok::Percent => BinKind::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = SExpr::Binop(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<SExpr, ParseError> {
        match self.peek() {
            Tok::Bang => {
                self.bump();
                Ok(SExpr::Not(Box::new(self.unary_expr()?)))
            }
            Tok::Minus => {
                self.bump();
                Ok(SExpr::Neg(Box::new(self.unary_expr()?)))
            }
            Tok::Star => {
                self.bump();
                Ok(SExpr::Deref(Box::new(self.unary_expr()?)))
            }
            Tok::Amp => {
                self.bump();
                let inner = self.unary_expr()?;
                if !is_lvalue(&inner) {
                    return self.err("`&` requires an lvalue operand");
                }
                Ok(SExpr::AddrOf(Box::new(inner)))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<SExpr, ParseError> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek() {
                Tok::Arrow => {
                    self.bump();
                    let f = self.ident()?;
                    e = SExpr::Arrow(Box::new(e), f);
                }
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    e = SExpr::Index(Box::new(e), Box::new(idx));
                }
                Tok::LParen => {
                    let name = match e {
                        SExpr::Var(ref s) => s.clone(),
                        _ => return self.err("only named functions can be called"),
                    };
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&Tok::RParen) {
                                break;
                            }
                            self.expect(Tok::Comma)?;
                        }
                    }
                    e = SExpr::Call(name, args);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<SExpr, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(SExpr::Var(s))
            }
            Tok::Int(n) => {
                self.bump();
                Ok(SExpr::Int(n))
            }
            Tok::Null => {
                self.bump();
                Ok(SExpr::Null)
            }
            Tok::New => {
                self.bump();
                match self.peek().clone() {
                    Tok::Ident(s) => {
                        self.bump();
                        Ok(SExpr::NewStruct(s))
                    }
                    Tok::LParen => {
                        self.bump();
                        let n = self.expr()?;
                        self.expect(Tok::RParen)?;
                        Ok(SExpr::NewArray(Box::new(n)))
                    }
                    other => self.err(format!(
                        "expected struct name or `(` after `new`, found {other}"
                    )),
                }
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }
}

/// Whether a surface expression can appear on the left of `=` or under `&`.
fn is_lvalue(e: &SExpr) -> bool {
    matches!(
        e,
        SExpr::Var(_) | SExpr::Deref(_) | SExpr::Arrow(..) | SExpr::Index(..)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_move_example() {
        // The paper's Figure 1(a).
        let src = r#"
            struct elem { next; data; }
            struct list { head; }
            fn move_(from, to) {
                atomic {
                    let x = to->head;
                    let y = from->head;
                    from->head = null;
                    if (x == null) {
                        to->head = y;
                    } else {
                        while (x->next != null) { x = x->next; }
                        x->next = y;
                    }
                }
            }
        "#;
        let m = parse(src).unwrap();
        assert_eq!(m.structs.len(), 2);
        assert_eq!(m.funcs.len(), 1);
        assert_eq!(m.funcs[0].params, vec!["from", "to"]);
        assert!(matches!(m.funcs[0].body[0], SStmt::Atomic(_)));
    }

    #[test]
    fn parses_precedence() {
        let m = parse("fn f() { let x = 1 + 2 * 3 < 4 && 5 == 6; }").unwrap();
        let SStmt::Let(_, Some(e)) = &m.funcs[0].body[0] else {
            panic!()
        };
        // && binds loosest here.
        assert!(matches!(e, SExpr::Binop(BinKind::And, ..)));
    }

    #[test]
    fn parses_postfix_chains() {
        let m = parse("fn f(p) { let x = p->a->b[3]; }").unwrap();
        let SStmt::Let(_, Some(e)) = &m.funcs[0].body[0] else {
            panic!()
        };
        assert!(matches!(e, SExpr::Index(..)));
    }

    #[test]
    fn parses_globals_and_new() {
        let m = parse("global g, h; struct s { f; } fn f() { g = new s; h = new(10); }").unwrap();
        assert_eq!(m.globals, vec!["g", "h"]);
        assert_eq!(m.funcs[0].body.len(), 2);
    }

    #[test]
    fn rejects_bad_lvalues() {
        assert!(parse("fn f() { 1 = 2; }").is_err());
        assert!(parse("fn f() { let x = &3; }").is_err());
        assert!(parse("fn f() { x + 1; }").is_err());
    }

    #[test]
    fn parses_else_if_chain() {
        let m = parse("fn f(x) { if (x == 1) { } else if (x == 2) { } else { } }").unwrap();
        let SStmt::If(_, _, els) = &m.funcs[0].body[0] else {
            panic!()
        };
        assert!(matches!(els[0], SStmt::If(..)));
    }

    #[test]
    fn reports_line_numbers() {
        let err = parse("fn f() {\n let x = ;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
