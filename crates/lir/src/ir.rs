//! The canonical intermediate representation.
//!
//! Programs are lowered (see [`crate::lower`]) into the three-address
//! statement forms of the paper's Figure 3: `x = y`, `x = &y`, `x = *y`,
//! `x = y + f`, `x = new(n)`, `x = null`, `*x = y`, and calls
//! `x = f(a0, .., an)`, plus an integer/arithmetic extension that touches
//! no heap cell (documented in `DESIGN.md`). Atomic sections appear as
//! bracketing [`Instr::EnterAtomic`] / [`Instr::ExitAtomic`] markers; the
//! lock-inference transformation rewrites them to
//! [`Instr::AcquireAll`] / [`Instr::ReleaseAll`].

use crate::intern::{Interner, Symbol};
use std::collections::HashMap;
use std::fmt;

/// Index of a variable in [`Program::vars`]. Unique program-wide.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// Index of a field in [`Program::fields`]. Unique program-wide.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldId(pub u32);

/// Index of a function in [`Program::functions`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FnId(pub u32);

/// Identifier of an atomic section (program-wide).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SectionId(pub u32);

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}
impl fmt::Debug for FieldId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}
impl fmt::Debug for FnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}
impl fmt::Debug for SectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sec{}", self.0)
    }
}

/// A program point: the location *before* instruction `idx` of `func`.
///
/// `idx == body.len()` denotes the function's exit point.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Point {
    pub func: FnId,
    pub idx: u32,
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}@{}", self.func, self.idx)
    }
}

/// Storage class of a variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VarKind {
    /// Program-wide variable; its cell lives in the shared heap.
    Global,
    /// Function parameter.
    Param,
    /// User-declared local.
    Local,
    /// Compiler-introduced temporary (never address-taken).
    Temp,
    /// The distinguished `ret_f` variable of a function.
    Ret,
}

/// Metadata for one variable.
#[derive(Clone, Debug)]
pub struct VarInfo {
    pub name: Symbol,
    /// Owning function; `None` for globals.
    pub owner: Option<FnId>,
    pub kind: VarKind,
    /// Whether `&x` appears anywhere. Address-taken locals are given a
    /// shared heap cell by the interpreter and keep their variable locks.
    pub addr_taken: bool,
}

impl VarInfo {
    /// True for variables whose cell can only be touched by the owning
    /// thread: locals/params/temps whose address is never taken. The
    /// inference omits `x̄` locks for these (paper §4.3).
    pub fn is_thread_local(&self) -> bool {
        self.owner.is_some() && !self.addr_taken
    }
}

/// Metadata for one field offset.
#[derive(Clone, Debug)]
pub struct FieldInfo {
    pub name: Symbol,
    /// Concrete cell offset within the allocation.
    pub offset: usize,
    /// True for the distinguished dynamic-index pseudo-field `[]`.
    /// All array elements are modeled by this single abstract offset,
    /// exactly as the paper collapses array dereferences to field offsets.
    pub dynamic: bool,
}

/// Arithmetic operators of the integer extension.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

/// Comparison operators (also usable on locations, e.g. `x == null`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Builtin operations provided by the runtime.
///
/// None of these touches a heap cell, so for lock inference they behave
/// like `x = null` (pure redefinition of the destination).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Intrinsic {
    /// `nops(n)`: spend `n` units of busy work (the paper dilutes atomic
    /// sections with nop loops; this is that knob).
    Nops,
    /// `rand(n)`: uniform value in `0..n` from the thread's PRNG.
    Rand,
    /// `tid()`: current thread index.
    Tid,
    /// `print(x)`: write the value to stdout (observable action —
    /// exactly what pessimistic atomic sections allow and STMs do not).
    Print,
    /// `assert(x)`: abort the interpreter if `x == 0`.
    Assert,
}

/// Right-hand sides of canonical assignments.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Rvalue {
    /// `x = y`
    Copy(VarId),
    /// `x = &y`
    AddrOf(VarId),
    /// `x = *y`
    Load(VarId),
    /// `x = y + f` — address of field `f` of the object `y` points to.
    FieldAddr(VarId, FieldId),
    /// `x = y +[z]` — address of dynamic element `z` of array `y`;
    /// abstracted as the `[]` pseudo-field for analysis purposes.
    DynAddr(VarId, VarId),
    /// `x = new(n)` with a constant cell count.
    Alloc(usize),
    /// `x = new(z)` with a dynamic cell count.
    AllocDyn(VarId),
    /// `x = null`
    Null,
    /// `x = c` (integer extension)
    ConstInt(i64),
    /// `x = y <op> z` (integer extension)
    Arith(ArithOp, VarId, VarId),
    /// `x = y <cmp> z`, producing 0 or 1 (integer extension)
    Cmp(CmpOp, VarId, VarId),
    /// `x = f(a0, .., an)`
    Call(FnId, Vec<VarId>),
    /// `x = intrinsic(a0, ..)`
    Intrinsic(Intrinsic, Vec<VarId>),
}

/// Access effect: read-only or read-write (the two-point lattice of §3.2,
/// `ro ⊑ rw`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Eff {
    Ro,
    Rw,
}

impl Eff {
    /// Least upper bound in the effect lattice.
    pub fn join(self, other: Eff) -> Eff {
        if self == Eff::Rw || other == Eff::Rw {
            Eff::Rw
        } else {
            Eff::Ro
        }
    }

    /// The partial order `ro ⊑ rw`.
    pub fn leq(self, other: Eff) -> bool {
        self == Eff::Ro || other == Eff::Rw
    }
}

impl fmt::Display for Eff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Eff::Ro => write!(f, "ro"),
            Eff::Rw => write!(f, "rw"),
        }
    }
}

/// One step of a lock path expression.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum PathOp {
    /// Load the value stored at the current address.
    Deref,
    /// Add the offset of a field to the current address.
    Field(FieldId),
    /// Add the run-time value of a variable to the current address —
    /// a dynamic array index that is still in scope (and equal to its
    /// current value) at the section entry. This is how the paper's
    /// implementation gets a *single* fine-grain lock for `table[b]`
    /// (the runtime lock descriptor holds a concrete memory address).
    Index(VarId),
}

/// A lock path expression: an *address expression* evaluable at an
/// atomic-section entry.
///
/// Starting from the address of `base`, each [`PathOp`] is applied in
/// order. `PathExpr { base: x, ops: [] }` is the lock `x̄` (protecting the
/// variable cell of `x`); appending `Deref` yields `*x̄`, appending
/// `Field(f)` yields `· + f`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PathExpr {
    pub base: VarId,
    pub ops: Vec<PathOp>,
}

impl PathExpr {
    /// The length of the lock expression as counted for k-limiting: both
    /// offset operations and dereferences contribute (paper §6.2).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the expression is just a variable address `x̄`.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The lock `x̄`.
    pub fn var(base: VarId) -> Self {
        PathExpr {
            base,
            ops: Vec::new(),
        }
    }
}

/// A lock to acquire at an atomic-section entry, as embedded in the
/// transformed program. Mirrors the runtime's *lock descriptors* (§5.2):
/// a triple of an address expression (the `Σ_k` component), a points-to
/// set number (the `Σ≡` component), and an effect (the `Σ_ε` component).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum LockSpec {
    /// The global lock `⊤`.
    Global,
    /// A coarse-grain lock protecting the whole points-to partition.
    Coarse { pts: u32, eff: Eff },
    /// A fine-grain expression lock, evaluated at section entry.
    Fine { path: PathExpr, pts: u32, eff: Eff },
}

impl LockSpec {
    /// Effect of this lock.
    pub fn eff(&self) -> Eff {
        match self {
            LockSpec::Global => Eff::Rw,
            LockSpec::Coarse { eff, .. } | LockSpec::Fine { eff, .. } => *eff,
        }
    }

    /// True for fine-grain (single-location family) locks.
    pub fn is_fine(&self) -> bool {
        matches!(self, LockSpec::Fine { .. })
    }
}

/// A canonical instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Instr {
    /// `x = rvalue`
    Assign(VarId, Rvalue),
    /// `*x = y`
    Store(VarId, VarId),
    /// Entry marker of an atomic section (input programs).
    EnterAtomic(SectionId),
    /// Exit marker of an atomic section (input programs).
    ExitAtomic(SectionId),
    /// `acquireAll(L)` (transformed programs).
    AcquireAll(SectionId, Vec<LockSpec>),
    /// `releaseAll` (transformed programs).
    ReleaseAll(SectionId),
    /// Unconditional jump to an instruction index in the same function.
    Jump(u32),
    /// Branch on `v != 0`: `(v, then_idx, else_idx)`.
    Branch(VarId, u32, u32),
    /// Return from the function (`ret_f` holds the return value).
    Ret,
    /// No operation (placeholder produced by lowering).
    Nop,
}

/// A function.
#[derive(Clone, Debug)]
pub struct Function {
    pub id: FnId,
    pub name: Symbol,
    pub params: Vec<VarId>,
    /// All locals, params, and temps owned by this function.
    pub locals: Vec<VarId>,
    /// The distinguished return-value variable `ret_f`.
    pub ret: VarId,
    pub body: Vec<Instr>,
}

impl Function {
    /// The exit program point (after the last instruction).
    pub fn exit_point(&self) -> Point {
        Point {
            func: self.id,
            idx: self.body.len() as u32,
        }
    }

    /// The entry program point.
    pub fn entry_point(&self) -> Point {
        Point {
            func: self.id,
            idx: 0,
        }
    }
}

/// A struct layout declared in the surface syntax.
#[derive(Clone, Debug)]
pub struct StructInfo {
    pub name: Symbol,
    pub fields: Vec<FieldId>,
}

/// A whole program in canonical IR.
#[derive(Clone, Debug, Default)]
pub struct Program {
    pub interner: Interner,
    pub vars: Vec<VarInfo>,
    pub fields: Vec<FieldInfo>,
    pub structs: Vec<StructInfo>,
    pub functions: Vec<Function>,
    pub globals: Vec<VarId>,
    /// Number of atomic sections (section ids are `0..n_sections`).
    pub n_sections: u32,
    fn_by_name: HashMap<Symbol, FnId>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// The distinguished dynamic-index pseudo-field `[]`, created on
    /// first use.
    pub fn elem_field(&mut self) -> FieldId {
        let name = self.interner.intern("[]");
        if let Some((i, _)) = self.fields.iter().enumerate().find(|(_, f)| f.dynamic) {
            debug_assert_eq!(self.fields[i].name, name);
            return FieldId(i as u32);
        }
        let id = FieldId(self.fields.len() as u32);
        self.fields.push(FieldInfo {
            name,
            offset: 0,
            dynamic: true,
        });
        id
    }

    /// Looks up the dynamic-index pseudo-field without creating it.
    pub fn elem_field_opt(&self) -> Option<FieldId> {
        self.fields
            .iter()
            .position(|f| f.dynamic)
            .map(|i| FieldId(i as u32))
    }

    /// Registers a fresh variable and returns its id.
    pub fn add_var(&mut self, info: VarInfo) -> VarId {
        let id = VarId(self.vars.len() as u32);
        if info.kind == VarKind::Global {
            self.globals.push(id);
        }
        self.vars.push(info);
        id
    }

    /// Registers a function shell; the body may be filled in later.
    pub fn add_function(&mut self, f: Function) -> FnId {
        let id = f.id;
        self.fn_by_name.insert(f.name, id);
        self.functions.push(f);
        id
    }

    /// Finds a function by source name.
    pub fn function_named(&self, name: &str) -> Option<FnId> {
        let sym = self
            .interner
            .names_iter()
            .position(|n| n == name)
            .map(|i| Symbol(i as u32))?;
        self.fn_by_name.get(&sym).copied()
    }

    /// Accessor: function by id.
    pub fn func(&self, id: FnId) -> &Function {
        &self.functions[id.0 as usize]
    }

    /// Accessor: mutable function by id.
    pub fn func_mut(&mut self, id: FnId) -> &mut Function {
        &mut self.functions[id.0 as usize]
    }

    /// Accessor: variable metadata.
    pub fn var(&self, id: VarId) -> &VarInfo {
        &self.vars[id.0 as usize]
    }

    /// Accessor: field metadata.
    pub fn field(&self, id: FieldId) -> &FieldInfo {
        &self.fields[id.0 as usize]
    }

    /// Resolved name of a variable.
    pub fn var_name(&self, id: VarId) -> &str {
        self.interner.resolve(self.var(id).name)
    }

    /// Resolved name of a field.
    pub fn field_name(&self, id: FieldId) -> &str {
        self.interner.resolve(self.field(id).name)
    }

    /// Resolved name of a function.
    pub fn fn_name(&self, id: FnId) -> &str {
        self.interner.resolve(self.func(id).name)
    }

    /// Total instruction count across all functions (a size metric for
    /// the scalability experiments).
    pub fn instr_count(&self) -> usize {
        self.functions.iter().map(|f| f.body.len()).sum()
    }

    /// Allocates a fresh atomic-section id.
    pub fn fresh_section(&mut self) -> SectionId {
        let id = SectionId(self.n_sections);
        self.n_sections += 1;
        id
    }
}

impl Interner {
    /// Iterates over interned names in id order (helper for
    /// [`Program::function_named`]).
    pub fn names_iter(&self) -> impl Iterator<Item = &str> {
        (0..self.len()).map(move |i| self.resolve(Symbol(i as u32)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eff_lattice_laws() {
        use Eff::*;
        assert_eq!(Ro.join(Ro), Ro);
        assert_eq!(Ro.join(Rw), Rw);
        assert_eq!(Rw.join(Ro), Rw);
        assert!(Ro.leq(Rw));
        assert!(Ro.leq(Ro));
        assert!(Rw.leq(Rw));
        assert!(!Rw.leq(Ro));
    }

    #[test]
    fn elem_field_is_singleton() {
        let mut p = Program::new();
        let a = p.elem_field();
        let b = p.elem_field();
        assert_eq!(a, b);
        assert!(p.field(a).dynamic);
        assert_eq!(p.elem_field_opt(), Some(a));
    }

    #[test]
    fn path_expr_len_counts_all_ops() {
        let e = PathExpr {
            base: VarId(0),
            ops: vec![PathOp::Deref, PathOp::Field(FieldId(1)), PathOp::Deref],
        };
        assert_eq!(e.len(), 3);
        assert!(!e.is_empty());
        assert!(PathExpr::var(VarId(3)).is_empty());
    }

    #[test]
    fn thread_locality() {
        let mut p = Program::new();
        let n = p.interner.intern("x");
        let g = p.add_var(VarInfo {
            name: n,
            owner: None,
            kind: VarKind::Global,
            addr_taken: false,
        });
        let l = p.add_var(VarInfo {
            name: n,
            owner: Some(FnId(0)),
            kind: VarKind::Local,
            addr_taken: false,
        });
        let la = p.add_var(VarInfo {
            name: n,
            owner: Some(FnId(0)),
            kind: VarKind::Local,
            addr_taken: true,
        });
        assert!(!p.var(g).is_thread_local());
        assert!(p.var(l).is_thread_local());
        assert!(!p.var(la).is_thread_local());
        assert_eq!(p.globals, vec![g]);
    }

    #[test]
    fn fresh_sections_are_sequential() {
        let mut p = Program::new();
        assert_eq!(p.fresh_section(), SectionId(0));
        assert_eq!(p.fresh_section(), SectionId(1));
        assert_eq!(p.n_sections, 2);
    }
}
