//! # lir — language and IR for the lock-inference compiler
//!
//! This crate implements the input language of *Inferring Locks for
//! Atomic Sections* (Cherem, Chilimbi, Gulwani; PLDI 2008), Figure 3:
//! a small pointer language with `atomic { .. }` sections, plus an
//! integer/arithmetic extension that makes the paper's benchmarks
//! expressible (documented in the repository's `DESIGN.md`).
//!
//! The pipeline is:
//!
//! 1. [`parser::parse`] — C-like surface syntax → [`ast::SModule`];
//! 2. [`lower::lower`] — AST → canonical three-address [`ir::Program`]
//!    (exactly the statement forms the paper's transfer functions
//!    consume);
//! 3. [`mod@cfg`] — successors/predecessors and atomic-region extraction.
//!
//! Use [`compile`] for steps 1–2 in one call:
//!
//! ```
//! let program = lir::compile(r#"
//!     struct list { head; }
//!     fn main(l) {
//!         atomic { l->head = null; }
//!     }
//! "#)?;
//! assert_eq!(program.n_sections, 1);
//! # Ok::<(), lir::lower::FrontendError>(())
//! ```
//!
//! The output language of the lock-inference transformation is the same
//! IR with [`ir::Instr::AcquireAll`] / [`ir::Instr::ReleaseAll`] in
//! place of the atomic markers.

pub mod ast;
pub mod cfg;
pub mod intern;
pub mod ir;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod pretty;

pub use intern::{Interner, Symbol};
pub use ir::{
    ArithOp, CmpOp, Eff, FieldId, FnId, Function, Instr, Intrinsic, LockSpec, PathExpr, PathOp,
    Point, Program, Rvalue, SectionId, VarId, VarInfo, VarKind,
};
pub use lower::compile;
