//! Surface abstract syntax, as produced by the parser.
//!
//! The surface language is a small C-like language with nested
//! expressions; [`crate::lower`] flattens it into the canonical
//! three-address IR the analysis consumes.

/// Binary operators of the surface language.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinKind {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Short-circuit conjunction.
    And,
    /// Short-circuit disjunction.
    Or,
}

/// A surface expression.
#[derive(Clone, PartialEq, Debug)]
pub enum SExpr {
    /// A variable reference.
    Var(String),
    /// An integer literal.
    Int(i64),
    /// The null location.
    Null,
    /// `*e`
    Deref(Box<SExpr>),
    /// `&lv`
    AddrOf(Box<SExpr>),
    /// `e->f` — field of the struct `e` points to.
    Arrow(Box<SExpr>, String),
    /// `e[i]` — dynamic element of the array `e` points to.
    Index(Box<SExpr>, Box<SExpr>),
    /// `new S` — allocate a struct named `S`.
    NewStruct(String),
    /// `new(n)` — allocate an array of `n` cells.
    NewArray(Box<SExpr>),
    /// `f(a, ..)` — direct call (functions or intrinsics).
    Call(String, Vec<SExpr>),
    /// `a <op> b`
    Binop(BinKind, Box<SExpr>, Box<SExpr>),
    /// `!e`
    Not(Box<SExpr>),
    /// `-e`
    Neg(Box<SExpr>),
}

/// A surface statement.
#[derive(Clone, PartialEq, Debug)]
pub enum SStmt {
    /// `let x;` or `let x = e;`
    Let(String, Option<SExpr>),
    /// `lv = e;`
    Assign(SExpr, SExpr),
    /// An expression evaluated for effect (a call).
    Expr(SExpr),
    /// `atomic { .. }`
    Atomic(Vec<SStmt>),
    /// `if (c) { .. } else { .. }`
    If(SExpr, Vec<SStmt>, Vec<SStmt>),
    /// `while (c) { .. }`
    While(SExpr, Vec<SStmt>),
    /// `return;` or `return e;`
    Return(Option<SExpr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// A nested block (its own lexical scope).
    Block(Vec<SStmt>),
}

/// A struct declaration: an ordered list of field names.
#[derive(Clone, PartialEq, Debug)]
pub struct SStruct {
    pub name: String,
    pub fields: Vec<String>,
}

/// A function declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct SFunc {
    pub name: String,
    pub params: Vec<String>,
    pub body: Vec<SStmt>,
    /// Source line of the `fn` keyword (diagnostics).
    pub line: u32,
}

/// A parsed module: structs, globals, and functions.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SModule {
    pub structs: Vec<SStruct>,
    pub globals: Vec<String>,
    pub funcs: Vec<SFunc>,
}

impl SModule {
    /// Emits surface syntax that parses back to this module (used by
    /// refactoring tools and by the parser round-trip property test).
    pub fn to_source(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for s in &self.structs {
            let fields: Vec<String> = s.fields.iter().map(|f| format!("{f};")).collect();
            let _ = writeln!(out, "struct {} {{ {} }}", s.name, fields.join(" "));
        }
        if !self.globals.is_empty() {
            let _ = writeln!(out, "global {};", self.globals.join(", "));
        }
        for f in &self.funcs {
            let _ = writeln!(out, "fn {}({}) {{", f.name, f.params.join(", "));
            for st in &f.body {
                emit_stmt(&mut out, st, 1);
            }
            let _ = writeln!(out, "}}");
        }
        out
    }
}

fn emit_stmt(out: &mut String, st: &SStmt, depth: usize) {
    use std::fmt::Write as _;
    let pad = "    ".repeat(depth);
    match st {
        SStmt::Let(name, None) => {
            let _ = writeln!(out, "{pad}let {name};");
        }
        SStmt::Let(name, Some(e)) => {
            let _ = writeln!(out, "{pad}let {name} = {};", emit_expr(e));
        }
        SStmt::Assign(lv, e) => {
            let _ = writeln!(out, "{pad}{} = {};", emit_expr(lv), emit_expr(e));
        }
        SStmt::Expr(e) => {
            let _ = writeln!(out, "{pad}{};", emit_expr(e));
        }
        SStmt::Atomic(body) => {
            let _ = writeln!(out, "{pad}atomic {{");
            for s in body {
                emit_stmt(out, s, depth + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        SStmt::If(c, then, els) => {
            let _ = writeln!(out, "{pad}if ({}) {{", emit_expr(c));
            for s in then {
                emit_stmt(out, s, depth + 1);
            }
            if els.is_empty() {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                for s in els {
                    emit_stmt(out, s, depth + 1);
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
        SStmt::While(c, body) => {
            let _ = writeln!(out, "{pad}while ({}) {{", emit_expr(c));
            for s in body {
                emit_stmt(out, s, depth + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        SStmt::Return(None) => {
            let _ = writeln!(out, "{pad}return;");
        }
        SStmt::Return(Some(e)) => {
            let _ = writeln!(out, "{pad}return {};", emit_expr(e));
        }
        SStmt::Break => {
            let _ = writeln!(out, "{pad}break;");
        }
        SStmt::Continue => {
            let _ = writeln!(out, "{pad}continue;");
        }
        SStmt::Block(body) => {
            let _ = writeln!(out, "{pad}{{");
            for s in body {
                emit_stmt(out, s, depth + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
    }
}

/// Fully parenthesized expression rendering — precedence-safe by
/// construction.
fn emit_expr(e: &SExpr) -> String {
    match e {
        SExpr::Var(x) => x.clone(),
        SExpr::Int(n) => {
            if *n < 0 {
                format!("(0 - {})", n.unsigned_abs())
            } else {
                format!("{n}")
            }
        }
        SExpr::Null => "null".into(),
        SExpr::Deref(inner) => format!("(*{})", emit_expr(inner)),
        SExpr::AddrOf(inner) => format!("(&{})", emit_expr(inner)),
        SExpr::Arrow(base, f) => format!("({})->{f}", emit_expr(base)),
        SExpr::Index(base, i) => format!("({})[{}]", emit_expr(base), emit_expr(i)),
        SExpr::NewStruct(s) => format!("(new {s})"),
        SExpr::NewArray(n) => format!("(new({}))", emit_expr(n)),
        SExpr::Call(f, args) => {
            let args: Vec<String> = args.iter().map(emit_expr).collect();
            format!("{f}({})", args.join(", "))
        }
        SExpr::Binop(op, a, b) => {
            let sym = match op {
                BinKind::Add => "+",
                BinKind::Sub => "-",
                BinKind::Mul => "*",
                BinKind::Div => "/",
                BinKind::Rem => "%",
                BinKind::Eq => "==",
                BinKind::Ne => "!=",
                BinKind::Lt => "<",
                BinKind::Le => "<=",
                BinKind::Gt => ">",
                BinKind::Ge => ">=",
                BinKind::And => "&&",
                BinKind::Or => "||",
            };
            format!("({} {} {})", emit_expr(a), sym, emit_expr(b))
        }
        SExpr::Not(inner) => format!("(!{})", emit_expr(inner)),
        SExpr::Neg(inner) => format!("(-{})", emit_expr(inner)),
    }
}
