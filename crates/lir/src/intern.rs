//! String interning for identifiers.
//!
//! Every name appearing in a program (variables, fields, functions,
//! structs) is interned into a [`Symbol`], a small copyable index. The
//! [`Interner`] owns the backing strings and lives inside
//! [`crate::ir::Program`].

use std::collections::HashMap;
use std::fmt;

/// An interned string.
///
/// Symbols are cheap to copy and compare; resolve them back to text with
/// [`Interner::resolve`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// Interns strings, handing out stable [`Symbol`] indices.
///
/// # Examples
///
/// ```
/// use lir::intern::Interner;
/// let mut i = Interner::new();
/// let a = i.intern("head");
/// let b = i.intern("head");
/// assert_eq!(a, b);
/// assert_eq!(i.resolve(a), "head");
/// ```
#[derive(Default, Debug, Clone)]
pub struct Interner {
    names: Vec<String>,
    map: HashMap<String, Symbol>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning the existing symbol if it was seen before.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(self.names.len() as u32);
        self.names.push(s.to_owned());
        self.map.insert(s.to_owned(), sym);
        sym
    }

    /// Returns the text of `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was produced by a different interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.0 as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("y");
        let a2 = i.intern("x");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        for name in ["alpha", "beta", "gamma"] {
            let s = i.intern(name);
            assert_eq!(i.resolve(s), name);
        }
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
