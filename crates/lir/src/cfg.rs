//! Control-flow utilities over a function body: successors,
//! predecessors, and atomic-section regions.

use crate::ir::*;

/// Successor instruction indices of the instruction at `idx`.
///
/// The index `body.len()` denotes the function exit point.
pub fn successors(body: &[Instr], idx: usize) -> Vec<u32> {
    match &body[idx] {
        Instr::Jump(t) => vec![*t],
        Instr::Branch(_, t, e) => {
            if t == e {
                vec![*t]
            } else {
                vec![*t, *e]
            }
        }
        Instr::Ret => vec![body.len() as u32],
        _ => vec![idx as u32 + 1],
    }
}

/// Predecessor lists for every program point of a function body.
///
/// Entry `i` lists the instruction indices whose execution can be
/// followed by point `i` (the point *before* instruction `i`); entry
/// `body.len()` is the exit point.
pub fn predecessors(body: &[Instr]) -> Vec<Vec<u32>> {
    let mut preds = vec![Vec::new(); body.len() + 1];
    for (i, _) in body.iter().enumerate() {
        for s in successors(body, i) {
            preds[s as usize].push(i as u32);
        }
    }
    preds
}

/// A lexical atomic region within one function.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AtomicRegion {
    pub id: SectionId,
    /// Index of the `EnterAtomic` instruction.
    pub enter: u32,
    /// Index of the matching `ExitAtomic` instruction.
    pub exit: u32,
}

impl AtomicRegion {
    /// True when instruction index `idx` lies strictly inside the region.
    pub fn contains(&self, idx: u32) -> bool {
        idx > self.enter && idx < self.exit
    }
}

/// Extracts the (possibly nested) atomic regions of a function body.
///
/// Lowering guarantees sections are properly bracketed; regions are
/// returned in order of their `EnterAtomic` instruction.
///
/// # Panics
///
/// Panics on malformed bracketing (which lowering never produces).
pub fn atomic_regions(body: &[Instr]) -> Vec<AtomicRegion> {
    let mut out = Vec::new();
    let mut stack: Vec<(SectionId, u32)> = Vec::new();
    for (i, ins) in body.iter().enumerate() {
        match ins {
            Instr::EnterAtomic(s) => stack.push((*s, i as u32)),
            Instr::ExitAtomic(s) => {
                let (open, enter) = stack.pop().expect("unbalanced atomic brackets");
                assert_eq!(open, *s, "mismatched atomic brackets");
                out.push(AtomicRegion {
                    id: *s,
                    enter,
                    exit: i as u32,
                });
            }
            _ => {}
        }
    }
    assert!(stack.is_empty(), "unclosed atomic section");
    out.sort_by_key(|r| r.enter);
    out
}

/// All functions transitively callable from the instructions in
/// `[start, end)` of `func`, including `func` itself. Used to determine
/// the interprocedural extent of an atomic section.
pub fn reachable_callees(program: &Program, func: FnId, start: u32, end: u32) -> Vec<FnId> {
    let mut seen = vec![false; program.functions.len()];
    let mut stack = Vec::new();
    let body = &program.func(func).body;
    for ins in &body[start as usize..end as usize] {
        if let Instr::Assign(_, Rvalue::Call(f, _)) = ins {
            if !seen[f.0 as usize] {
                seen[f.0 as usize] = true;
                stack.push(*f);
            }
        }
    }
    let mut out: Vec<FnId> = vec![func];
    while let Some(f) = stack.pop() {
        out.push(f);
        for ins in &program.func(f).body {
            if let Instr::Assign(_, Rvalue::Call(g, _)) = ins {
                if !seen[g.0 as usize] {
                    seen[g.0 as usize] = true;
                    stack.push(*g);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::compile;

    #[test]
    fn straight_line_preds() {
        let p = compile("fn main() { let x = 1; let y = 2; }").unwrap();
        let body = &p.functions[0].body;
        let preds = predecessors(body);
        assert!(preds[0].is_empty());
        for (i, ps) in preds.iter().enumerate().take(body.len()).skip(1) {
            assert_eq!(*ps, vec![i as u32 - 1]);
        }
    }

    #[test]
    fn loop_has_back_edge() {
        let p = compile("fn main(x) { while (x != null) { x = x->f; } } struct s { f; }").unwrap();
        let body = &p.functions[0].body;
        let preds = predecessors(body);
        // The loop head (index 0 here: first instr of cond) must have >1 pred
        // or at least a pred with a larger index (the back edge).
        let has_back_edge = preds
            .iter()
            .enumerate()
            .any(|(i, ps)| ps.iter().any(|&pr| pr as usize > i));
        assert!(has_back_edge);
    }

    #[test]
    fn regions_nest() {
        let p = compile("fn main() { atomic { let a = 1; atomic { let b = 2; } } }").unwrap();
        let regions = atomic_regions(&p.functions[0].body);
        assert_eq!(regions.len(), 2);
        let outer = regions.iter().find(|r| r.id == SectionId(0)).unwrap();
        let inner = regions.iter().find(|r| r.id == SectionId(1)).unwrap();
        assert!(outer.contains(inner.enter) && outer.contains(inner.exit));
    }

    #[test]
    fn callee_closure() {
        let p = compile(
            "fn main() { atomic { let x = a(); } }
             fn a() { return b(); }
             fn b() { return null; }
             fn unused() { return null; }",
        )
        .unwrap();
        let r = atomic_regions(&p.functions[0].body)[0];
        let fns = reachable_callees(&p, FnId(0), r.enter, r.exit + 1);
        assert_eq!(fns.len(), 3); // main, a, b — not unused
    }

    #[test]
    fn branch_successors_dedup() {
        let body = vec![Instr::Branch(VarId(0), 1, 1), Instr::Ret];
        assert_eq!(successors(&body, 0), vec![1]);
        assert_eq!(successors(&body, 1), vec![2]);
    }
}
