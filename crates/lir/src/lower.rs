//! Lowering from surface AST to the canonical IR.
//!
//! Nested expressions are flattened to the three-address forms of the
//! paper's Figure 3 by introducing compiler temporaries. Field and array
//! accesses become explicit address computations (`FieldAddr`/`DynAddr`)
//! followed by `Load`/`Store`. Short-circuit `&&`/`||` lower to control
//! flow. Atomic sections become `EnterAtomic`/`ExitAtomic` brackets.

use crate::ast::*;
use crate::ir::*;
use std::collections::HashMap;
use std::fmt;

/// An error produced during lowering (name resolution, arity, etc.).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LowerError {
    pub message: String,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering error: {}", self.message)
    }
}

impl std::error::Error for LowerError {}

/// Either a parse or a lowering error, from [`compile`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrontendError {
    Parse(crate::parser::ParseError),
    Lower(LowerError),
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Parse(e) => e.fmt(f),
            FrontendError::Lower(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for FrontendError {}

/// Parses and lowers `src` in one step.
///
/// # Errors
///
/// Returns the first parse or lowering error.
///
/// # Examples
///
/// ```
/// let p = lir::compile("fn main() { let x = new(4); x[0] = 7; }")?;
/// assert_eq!(p.functions.len(), 1);
/// # Ok::<(), lir::lower::FrontendError>(())
/// ```
pub fn compile(src: &str) -> Result<Program, FrontendError> {
    let module = crate::parser::parse(src).map_err(FrontendError::Parse)?;
    lower(&module).map_err(FrontendError::Lower)
}

/// Lowers a parsed module to canonical IR.
///
/// # Errors
///
/// Reports unresolved names, arity mismatches, conflicting field
/// offsets, `return` inside `atomic`, and `break`/`continue` outside
/// loops.
pub fn lower(module: &SModule) -> Result<Program, LowerError> {
    let mut program = Program::new();
    let mut structs: HashMap<String, usize> = HashMap::new();
    let mut field_ids: HashMap<String, FieldId> = HashMap::new();

    // Reserve the dynamic pseudo-field first so tests get stable ids.
    program.elem_field();

    for s in &module.structs {
        if structs.contains_key(&s.name) {
            return err(format!("struct `{}` declared twice", s.name));
        }
        let name_sym = program.interner.intern(&s.name);
        let mut fids = Vec::new();
        for (offset, fname) in s.fields.iter().enumerate() {
            if let Some(&existing) = field_ids.get(fname) {
                let info = program.field(existing);
                if info.offset != offset {
                    return err(format!(
                        "field `{fname}` declared at conflicting offsets {} and {offset}; \
                         field names must resolve to a single offset in this untyped language",
                        info.offset
                    ));
                }
                fids.push(existing);
            } else {
                let sym = program.interner.intern(fname);
                let id = FieldId(program.fields.len() as u32);
                program.fields.push(FieldInfo {
                    name: sym,
                    offset,
                    dynamic: false,
                });
                field_ids.insert(fname.clone(), id);
                fids.push(id);
            }
        }
        structs.insert(s.name.clone(), program.structs.len());
        program.structs.push(StructInfo {
            name: name_sym,
            fields: fids,
        });
    }

    let mut globals: HashMap<String, VarId> = HashMap::new();
    for g in &module.globals {
        if globals.contains_key(g) {
            return err(format!("global `{g}` declared twice"));
        }
        let sym = program.interner.intern(g);
        let id = program.add_var(VarInfo {
            name: sym,
            owner: None,
            kind: VarKind::Global,
            addr_taken: false,
        });
        globals.insert(g.clone(), id);
    }

    // Collect function signatures first so calls can be forward.
    let mut fn_ids: HashMap<String, FnId> = HashMap::new();
    for (i, f) in module.funcs.iter().enumerate() {
        if fn_ids.contains_key(&f.name) {
            return err(format!("function `{}` declared twice", f.name));
        }
        if is_intrinsic(&f.name).is_some() {
            return err(format!("function `{}` shadows an intrinsic", f.name));
        }
        fn_ids.insert(f.name.clone(), FnId(i as u32));
    }
    let arity: HashMap<FnId, usize> = module
        .funcs
        .iter()
        .enumerate()
        .map(|(i, f)| (FnId(i as u32), f.params.len()))
        .collect();

    for (i, f) in module.funcs.iter().enumerate() {
        let id = FnId(i as u32);
        let name_sym = program.interner.intern(&f.name);
        let ret_sym = program.interner.intern(&format!("ret${}", f.name));
        let ret = program.add_var(VarInfo {
            name: ret_sym,
            owner: Some(id),
            kind: VarKind::Ret,
            addr_taken: false,
        });
        let mut ctx = FnCtx {
            program: &mut program,
            structs: &structs,
            field_ids: &field_ids,
            globals: &globals,
            fn_ids: &fn_ids,
            arity: &arity,
            func: id,
            ret,
            fn_name: &f.name,
            scopes: vec![HashMap::new()],
            locals: Vec::new(),
            instrs: Vec::new(),
            loops: Vec::new(),
            atomic_depth: 0,
            n_temps: 0,
        };
        let mut params = Vec::new();
        for p in &f.params {
            let v = ctx.declare(p, VarKind::Param)?;
            params.push(v);
        }
        ctx.stmts(&f.body)?;
        ctx.instrs.push(Instr::Ret);
        let FnCtx {
            instrs, mut locals, ..
        } = ctx;
        locals.push(ret);
        program.add_function(Function {
            id,
            name: name_sym,
            params,
            locals,
            ret,
            body: instrs,
        });
    }

    Ok(program)
}

fn err<T>(message: String) -> Result<T, LowerError> {
    Err(LowerError { message })
}

fn is_intrinsic(name: &str) -> Option<(Intrinsic, usize)> {
    match name {
        "nops" => Some((Intrinsic::Nops, 1)),
        "rand" => Some((Intrinsic::Rand, 1)),
        "tid" => Some((Intrinsic::Tid, 0)),
        "print" => Some((Intrinsic::Print, 1)),
        "assert" => Some((Intrinsic::Assert, 1)),
        _ => None,
    }
}

struct LoopCtx {
    continue_target: u32,
    break_patches: Vec<usize>,
}

struct FnCtx<'a> {
    program: &'a mut Program,
    structs: &'a HashMap<String, usize>,
    field_ids: &'a HashMap<String, FieldId>,
    globals: &'a HashMap<String, VarId>,
    fn_ids: &'a HashMap<String, FnId>,
    arity: &'a HashMap<FnId, usize>,
    func: FnId,
    ret: VarId,
    fn_name: &'a str,
    scopes: Vec<HashMap<String, VarId>>,
    locals: Vec<VarId>,
    instrs: Vec<Instr>,
    loops: Vec<LoopCtx>,
    atomic_depth: u32,
    n_temps: u32,
}

impl FnCtx<'_> {
    fn emit(&mut self, i: Instr) -> usize {
        self.instrs.push(i);
        self.instrs.len() - 1
    }

    fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    fn declare(&mut self, name: &str, kind: VarKind) -> Result<VarId, LowerError> {
        if self.scopes.last().unwrap().contains_key(name) {
            return err(format!(
                "`{name}` declared twice in the same scope of `{}`",
                self.fn_name
            ));
        }
        let sym = self.program.interner.intern(name);
        let v = self.program.add_var(VarInfo {
            name: sym,
            owner: Some(self.func),
            kind,
            addr_taken: false,
        });
        self.scopes.last_mut().unwrap().insert(name.to_owned(), v);
        self.locals.push(v);
        Ok(v)
    }

    fn temp(&mut self) -> VarId {
        let name = format!("t${}", self.n_temps);
        self.n_temps += 1;
        let sym = self.program.interner.intern(&name);
        let v = self.program.add_var(VarInfo {
            name: sym,
            owner: Some(self.func),
            kind: VarKind::Temp,
            addr_taken: false,
        });
        self.locals.push(v);
        v
    }

    fn resolve(&self, name: &str) -> Result<VarId, LowerError> {
        for scope in self.scopes.iter().rev() {
            if let Some(&v) = scope.get(name) {
                return Ok(v);
            }
        }
        if let Some(&v) = self.globals.get(name) {
            return Ok(v);
        }
        err(format!("unresolved name `{name}` in `{}`", self.fn_name))
    }

    fn stmts(&mut self, body: &[SStmt]) -> Result<(), LowerError> {
        for s in body {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn scoped(&mut self, body: &[SStmt]) -> Result<(), LowerError> {
        self.scopes.push(HashMap::new());
        let r = self.stmts(body);
        self.scopes.pop();
        r
    }

    fn stmt(&mut self, s: &SStmt) -> Result<(), LowerError> {
        match s {
            SStmt::Let(name, init) => {
                let v = self.declare(name, VarKind::Local)?;
                match init {
                    Some(e) => self.lower_into(e, v)?,
                    None => {
                        self.emit(Instr::Assign(v, Rvalue::Null));
                    }
                }
                Ok(())
            }
            SStmt::Assign(lv, e) => match lv {
                SExpr::Var(name) => {
                    let v = self.resolve(name)?;
                    self.lower_into(e, v)
                }
                _ => {
                    let rhs = self.lower_val(e)?;
                    let addr = self.lower_addr(lv)?;
                    self.emit(Instr::Store(addr, rhs));
                    Ok(())
                }
            },
            SStmt::Expr(e) => {
                self.lower_val(e)?;
                Ok(())
            }
            SStmt::Atomic(body) => {
                let sid = self.program.fresh_section();
                self.atomic_depth += 1;
                self.emit(Instr::EnterAtomic(sid));
                let r = self.scoped(body);
                self.emit(Instr::ExitAtomic(sid));
                self.atomic_depth -= 1;
                r
            }
            SStmt::If(c, then, els) => {
                let cv = self.lower_val(c)?;
                let br = self.emit(Instr::Branch(cv, 0, 0));
                let then_start = self.here();
                self.scoped(then)?;
                if els.is_empty() {
                    let end = self.here();
                    self.instrs[br] = Instr::Branch(cv, then_start, end);
                } else {
                    let jmp = self.emit(Instr::Jump(0));
                    let else_start = self.here();
                    self.scoped(els)?;
                    let end = self.here();
                    self.instrs[br] = Instr::Branch(cv, then_start, else_start);
                    self.instrs[jmp] = Instr::Jump(end);
                }
                Ok(())
            }
            SStmt::While(c, body) => {
                let head = self.here();
                let cv = self.lower_val(c)?;
                let br = self.emit(Instr::Branch(cv, 0, 0));
                let body_start = self.here();
                self.loops.push(LoopCtx {
                    continue_target: head,
                    break_patches: Vec::new(),
                });
                self.scoped(body)?;
                self.emit(Instr::Jump(head));
                let end = self.here();
                self.instrs[br] = Instr::Branch(cv, body_start, end);
                let lp = self.loops.pop().unwrap();
                for site in lp.break_patches {
                    self.instrs[site] = Instr::Jump(end);
                }
                Ok(())
            }
            SStmt::Return(e) => {
                if self.atomic_depth > 0 {
                    return err(format!(
                        "`return` inside `atomic` is not supported (function `{}`)",
                        self.fn_name
                    ));
                }
                let ret = self.ret;
                match e {
                    Some(e) => self.lower_into(e, ret)?,
                    None => {
                        self.emit(Instr::Assign(ret, Rvalue::Null));
                    }
                }
                self.emit(Instr::Ret);
                Ok(())
            }
            SStmt::Break => {
                if self.atomic_depth > 0 && !self.loop_inside_atomic() {
                    return err(format!(
                        "`break` crossing an `atomic` boundary in `{}`",
                        self.fn_name
                    ));
                }
                match self.loops.last_mut() {
                    Some(_) => {
                        let site = self.emit(Instr::Jump(0));
                        self.loops.last_mut().unwrap().break_patches.push(site);
                        Ok(())
                    }
                    None => err(format!("`break` outside a loop in `{}`", self.fn_name)),
                }
            }
            SStmt::Continue => match self.loops.last() {
                Some(lp) => {
                    let target = lp.continue_target;
                    self.emit(Instr::Jump(target));
                    Ok(())
                }
                None => err(format!("`continue` outside a loop in `{}`", self.fn_name)),
            },
            SStmt::Block(body) => self.scoped(body),
        }
    }

    /// Conservative check: `break` is fine if the innermost loop started
    /// inside the current atomic section. We track this approximately by
    /// requiring that loops and atomic sections are properly nested,
    /// which the grammar guarantees; only a `break` whose loop is
    /// *outside* the atomic section would jump across the boundary.
    fn loop_inside_atomic(&self) -> bool {
        // Loops opened after the current atomic section began have a
        // continue target that is >= the EnterAtomic index. Find the most
        // recent EnterAtomic without a matching Exit.
        let mut depth = 0i32;
        let mut enter_idx = None;
        for (i, ins) in self.instrs.iter().enumerate().rev() {
            match ins {
                Instr::ExitAtomic(_) => depth += 1,
                Instr::EnterAtomic(_) => {
                    if depth == 0 {
                        enter_idx = Some(i as u32);
                        break;
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        match (enter_idx, self.loops.last()) {
            (Some(e), Some(lp)) => lp.continue_target >= e,
            _ => true,
        }
    }

    /// Lowers `e` directly into destination variable `dest` where
    /// possible (avoiding a temp + copy).
    fn lower_into(&mut self, e: &SExpr, dest: VarId) -> Result<(), LowerError> {
        match e {
            SExpr::Var(name) => {
                let v = self.resolve(name)?;
                self.emit(Instr::Assign(dest, Rvalue::Copy(v)));
            }
            SExpr::Int(n) => {
                self.emit(Instr::Assign(dest, Rvalue::ConstInt(*n)));
            }
            SExpr::Null => {
                self.emit(Instr::Assign(dest, Rvalue::Null));
            }
            SExpr::Deref(inner) => {
                let a = self.lower_val(inner)?;
                self.emit(Instr::Assign(dest, Rvalue::Load(a)));
            }
            SExpr::Arrow(..) | SExpr::Index(..) => {
                let addr = self.lower_addr(e)?;
                self.emit(Instr::Assign(dest, Rvalue::Load(addr)));
            }
            SExpr::AddrOf(lv) => {
                let rv = self.addr_rvalue(lv)?;
                self.emit(Instr::Assign(dest, rv));
            }
            SExpr::NewStruct(name) => {
                let &si = self.structs.get(name).ok_or_else(|| LowerError {
                    message: format!("unknown struct `{name}`"),
                })?;
                let size = self.program.structs[si].fields.len().max(1);
                self.emit(Instr::Assign(dest, Rvalue::Alloc(size)));
            }
            SExpr::NewArray(n) => match **n {
                SExpr::Int(k) if k >= 0 => {
                    self.emit(Instr::Assign(dest, Rvalue::Alloc(k as usize)));
                }
                _ => {
                    let v = self.lower_val(n)?;
                    self.emit(Instr::Assign(dest, Rvalue::AllocDyn(v)));
                }
            },
            SExpr::Call(name, args) => {
                let rv = self.call_rvalue(name, args)?;
                self.emit(Instr::Assign(dest, rv));
            }
            SExpr::Binop(kind, a, b) => match binop_class(*kind) {
                OpClass::Arith(op) => {
                    let va = self.lower_val(a)?;
                    let vb = self.lower_val(b)?;
                    self.emit(Instr::Assign(dest, Rvalue::Arith(op, va, vb)));
                }
                OpClass::Cmp(op) => {
                    let va = self.lower_val(a)?;
                    let vb = self.lower_val(b)?;
                    self.emit(Instr::Assign(dest, Rvalue::Cmp(op, va, vb)));
                }
                OpClass::And => self.lower_short_circuit(a, b, true, dest)?,
                OpClass::Or => self.lower_short_circuit(a, b, false, dest)?,
            },
            SExpr::Not(inner) => {
                let v = self.lower_val(inner)?;
                let z = self.temp();
                self.emit(Instr::Assign(z, Rvalue::ConstInt(0)));
                self.emit(Instr::Assign(dest, Rvalue::Cmp(CmpOp::Eq, v, z)));
            }
            SExpr::Neg(inner) => {
                let v = self.lower_val(inner)?;
                let z = self.temp();
                self.emit(Instr::Assign(z, Rvalue::ConstInt(0)));
                self.emit(Instr::Assign(dest, Rvalue::Arith(ArithOp::Sub, z, v)));
            }
        }
        Ok(())
    }

    /// Lowers `e` to a variable holding its value.
    fn lower_val(&mut self, e: &SExpr) -> Result<VarId, LowerError> {
        if let SExpr::Var(name) = e {
            return self.resolve(name);
        }
        let t = self.temp();
        self.lower_into(e, t)?;
        Ok(t)
    }

    /// Lowers an lvalue to a variable holding the *address* of the
    /// denoted cell.
    fn lower_addr(&mut self, lv: &SExpr) -> Result<VarId, LowerError> {
        let rv = self.addr_rvalue(lv)?;
        if let Rvalue::Copy(v) = rv {
            return Ok(v);
        }
        let t = self.temp();
        self.emit(Instr::Assign(t, rv));
        Ok(t)
    }

    /// The rvalue computing the address of an lvalue.
    fn addr_rvalue(&mut self, lv: &SExpr) -> Result<Rvalue, LowerError> {
        match lv {
            SExpr::Var(name) => {
                let v = self.resolve(name)?;
                self.program.vars[v.0 as usize].addr_taken = true;
                Ok(Rvalue::AddrOf(v))
            }
            SExpr::Deref(inner) => {
                let v = self.lower_val(inner)?;
                Ok(Rvalue::Copy(v))
            }
            SExpr::Arrow(base, fname) => {
                let b = self.lower_val(base)?;
                let f = *self.field_ids.get(fname).ok_or_else(|| LowerError {
                    message: format!("unknown field `{fname}` in `{}`", self.fn_name),
                })?;
                Ok(Rvalue::FieldAddr(b, f))
            }
            SExpr::Index(base, idx) => {
                let b = self.lower_val(base)?;
                let i = self.lower_val(idx)?;
                Ok(Rvalue::DynAddr(b, i))
            }
            _ => err(format!("not an lvalue in `{}`", self.fn_name)),
        }
    }

    fn call_rvalue(&mut self, name: &str, args: &[SExpr]) -> Result<Rvalue, LowerError> {
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.lower_val(a)?);
        }
        if let Some((intr, n)) = is_intrinsic(name) {
            if vals.len() != n {
                return err(format!(
                    "intrinsic `{name}` expects {n} argument(s), got {}",
                    vals.len()
                ));
            }
            return Ok(Rvalue::Intrinsic(intr, vals));
        }
        let &fid = self.fn_ids.get(name).ok_or_else(|| LowerError {
            message: format!("unknown function `{name}`"),
        })?;
        let want = self.arity[&fid];
        if vals.len() != want {
            return err(format!(
                "function `{name}` expects {want} argument(s), got {}",
                vals.len()
            ));
        }
        Ok(Rvalue::Call(fid, vals))
    }

    /// Short-circuit `&&` (is_and) / `||`, producing 0/1 into `dest`.
    fn lower_short_circuit(
        &mut self,
        a: &SExpr,
        b: &SExpr,
        is_and: bool,
        dest: VarId,
    ) -> Result<(), LowerError> {
        let va = self.lower_val(a)?;
        let br = self.emit(Instr::Branch(va, 0, 0));
        // Path where the second operand decides the result:
        let eval_b = self.here();
        let vb = self.lower_val(b)?;
        let z = self.temp();
        self.emit(Instr::Assign(z, Rvalue::ConstInt(0)));
        self.emit(Instr::Assign(dest, Rvalue::Cmp(CmpOp::Ne, vb, z)));
        let jmp = self.emit(Instr::Jump(0));
        // Path where the first operand decides the result:
        let decided = self.here();
        self.emit(Instr::Assign(
            dest,
            Rvalue::ConstInt(if is_and { 0 } else { 1 }),
        ));
        let end = self.here();
        self.instrs[br] = if is_and {
            Instr::Branch(va, eval_b, decided)
        } else {
            Instr::Branch(va, decided, eval_b)
        };
        self.instrs[jmp] = Instr::Jump(end);
        Ok(())
    }
}

enum OpClass {
    Arith(ArithOp),
    Cmp(CmpOp),
    And,
    Or,
}

fn binop_class(k: BinKind) -> OpClass {
    match k {
        BinKind::Add => OpClass::Arith(ArithOp::Add),
        BinKind::Sub => OpClass::Arith(ArithOp::Sub),
        BinKind::Mul => OpClass::Arith(ArithOp::Mul),
        BinKind::Div => OpClass::Arith(ArithOp::Div),
        BinKind::Rem => OpClass::Arith(ArithOp::Rem),
        BinKind::Eq => OpClass::Cmp(CmpOp::Eq),
        BinKind::Ne => OpClass::Cmp(CmpOp::Ne),
        BinKind::Lt => OpClass::Cmp(CmpOp::Lt),
        BinKind::Le => OpClass::Cmp(CmpOp::Le),
        BinKind::Gt => OpClass::Cmp(CmpOp::Gt),
        BinKind::Ge => OpClass::Cmp(CmpOp::Ge),
        BinKind::And => OpClass::And,
        BinKind::Or => OpClass::Or,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Instr as I;

    fn body(src: &str) -> (Program, Vec<Instr>) {
        let p = compile(src).unwrap();
        let b = p.functions[0].body.clone();
        (p, b)
    }

    #[test]
    fn lowers_field_store_to_canonical_forms() {
        let (p, b) = body("struct s { f; g; } fn main(p) { p->g = null; }");
        // t0 = p + g ; t1 = null; *t0 = t1  (order: rhs first, then addr)
        assert!(b
            .iter()
            .any(|i| matches!(i, I::Assign(_, Rvalue::FieldAddr(_, _)))));
        assert!(b.iter().any(|i| matches!(i, I::Store(_, _))));
        assert_eq!(p.functions[0].params.len(), 1);
    }

    #[test]
    fn lowers_index_to_dynaddr() {
        let (_, b) = body("fn main(a, i) { let x = a[i]; a[i] = x; }");
        let dyns = b
            .iter()
            .filter(|i| matches!(i, I::Assign(_, Rvalue::DynAddr(..))))
            .count();
        assert_eq!(dyns, 2);
    }

    #[test]
    fn atomic_brackets_are_emitted() {
        let (_, b) = body("fn main() { atomic { let x = 1; } }");
        assert!(matches!(b[0], I::EnterAtomic(SectionId(0))));
        assert!(b.iter().any(|i| matches!(i, I::ExitAtomic(SectionId(0)))));
    }

    #[test]
    fn short_circuit_and_lowers_to_branches() {
        let (_, b) = body("struct s { f; } fn main(x) { let c = x != null && x->f == null; }");
        // Must not unconditionally load x->f: there is a branch before it.
        let branch_pos = b.iter().position(|i| matches!(i, I::Branch(..))).unwrap();
        let load_pos = b
            .iter()
            .position(|i| matches!(i, I::Assign(_, Rvalue::Load(_))))
            .unwrap();
        assert!(branch_pos < load_pos);
    }

    #[test]
    fn while_loop_shape() {
        let (_, b) = body("struct s { f; } fn main(x) { while (x != null) { x = x->f; } }");
        let br = b.iter().find_map(|i| match i {
            I::Branch(_, t, e) => Some((*t, *e)),
            _ => None,
        });
        let (t, e) = br.unwrap();
        assert!(t < e, "then (body) comes before else (exit)");
        assert!(b.iter().any(|i| matches!(i, I::Jump(0)))); // back edge to head
    }

    #[test]
    fn break_and_continue_resolve() {
        let (_, b) =
            body("fn main(x) { while (1 == 1) { if (x == null) { break; } continue; } return x; }");
        // No unpatched Jump(0) to a Branch... just check all jumps in range.
        for i in &b {
            if let I::Jump(t) = i {
                assert!((*t as usize) <= b.len());
            }
        }
    }

    #[test]
    fn addr_of_marks_vars() {
        let (p, _) = body("fn main() { let x = null; let y = &x; }");
        let x = p
            .vars
            .iter()
            .position(|v| p.interner.resolve(v.name) == "x" && v.kind == VarKind::Local)
            .unwrap();
        assert!(p.vars[x].addr_taken);
    }

    #[test]
    fn rejects_return_inside_atomic() {
        assert!(compile("fn main() { atomic { return; } }").is_err());
    }

    #[test]
    fn rejects_unknown_names() {
        assert!(compile("fn main() { x = 1; }").is_err());
        assert!(compile("fn main() { let x = f(); }").is_err());
        assert!(compile("fn main(p) { let x = p->nope; }").is_err());
        assert!(compile("fn main() { let x = new nope; }").is_err());
    }

    #[test]
    fn rejects_arity_mismatch() {
        assert!(compile("fn f(a) { } fn main() { f(); }").is_err());
        assert!(compile("fn main() { nops(); }").is_err());
    }

    #[test]
    fn structs_share_fields_at_same_offset() {
        assert!(compile("struct a { x; } struct b { x; } fn main() {}").is_ok());
        assert!(compile("struct a { x; y; } struct b { y; } fn main() {}").is_err());
    }

    #[test]
    fn call_lowering() {
        let (p, b) = body("fn main(q) { let r = helper(q, q); } fn helper(a, b) { return a; }");
        assert!(b
            .iter()
            .any(|i| matches!(i, I::Assign(_, Rvalue::Call(FnId(1), args)) if args.len() == 2)));
        assert_eq!(p.functions.len(), 2);
    }

    #[test]
    fn nested_atomic_sections_get_distinct_ids() {
        let (p, b) = body("fn main() { atomic { atomic { let x = 1; } } }");
        assert_eq!(p.n_sections, 2);
        let enters: Vec<_> = b
            .iter()
            .filter_map(|i| match i {
                I::EnterAtomic(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(enters, vec![SectionId(0), SectionId(1)]);
    }
}
