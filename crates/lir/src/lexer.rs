//! Lexer for the C-like surface syntax.

use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    Ident(String),
    Int(i64),
    // keywords
    Fn,
    Let,
    Global,
    Struct,
    Atomic,
    If,
    Else,
    While,
    Return,
    Break,
    Continue,
    Null,
    New,
    // punctuation
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Assign,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    AmpAmp,
    PipePipe,
    Bang,
    Arrow,
    Dot,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(n) => write!(f, "integer `{n}`"),
            other => write!(f, "`{}`", other.text()),
        }
    }
}

impl Tok {
    fn text(&self) -> &'static str {
        match self {
            Tok::Ident(_) => "<ident>",
            Tok::Int(_) => "<int>",
            Tok::Fn => "fn",
            Tok::Let => "let",
            Tok::Global => "global",
            Tok::Struct => "struct",
            Tok::Atomic => "atomic",
            Tok::If => "if",
            Tok::Else => "else",
            Tok::While => "while",
            Tok::Return => "return",
            Tok::Break => "break",
            Tok::Continue => "continue",
            Tok::Null => "null",
            Tok::New => "new",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::LBracket => "[",
            Tok::RBracket => "]",
            Tok::Semi => ";",
            Tok::Comma => ",",
            Tok::Assign => "=",
            Tok::EqEq => "==",
            Tok::NotEq => "!=",
            Tok::Lt => "<",
            Tok::Le => "<=",
            Tok::Gt => ">",
            Tok::Ge => ">=",
            Tok::Plus => "+",
            Tok::Minus => "-",
            Tok::Star => "*",
            Tok::Slash => "/",
            Tok::Percent => "%",
            Tok::Amp => "&",
            Tok::AmpAmp => "&&",
            Tok::PipePipe => "||",
            Tok::Bang => "!",
            Tok::Arrow => "->",
            Tok::Dot => ".",
            Tok::Eof => "<eof>",
        }
    }
}

/// A token plus its source line (1-based), for diagnostics.
#[derive(Clone, Debug)]
pub struct Spanned {
    pub tok: Tok,
    pub line: u32,
}

/// A lexing error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `src`.
///
/// Line comments (`// ...`) and block comments (`/* ... */`) are skipped.
///
/// # Errors
///
/// Returns a [`LexError`] on unknown characters, malformed integers, or
/// unterminated block comments.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    macro_rules! push {
        ($t:expr) => {
            toks.push(Spanned { tok: $t, line })
        };
    }
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError {
                            line: start_line,
                            message: "unterminated block comment".into(),
                        });
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '{' => {
                push!(Tok::LBrace);
                i += 1;
            }
            '}' => {
                push!(Tok::RBrace);
                i += 1;
            }
            '(' => {
                push!(Tok::LParen);
                i += 1;
            }
            ')' => {
                push!(Tok::RParen);
                i += 1;
            }
            '[' => {
                push!(Tok::LBracket);
                i += 1;
            }
            ']' => {
                push!(Tok::RBracket);
                i += 1;
            }
            ';' => {
                push!(Tok::Semi);
                i += 1;
            }
            ',' => {
                push!(Tok::Comma);
                i += 1;
            }
            '.' => {
                push!(Tok::Dot);
                i += 1;
            }
            '+' => {
                push!(Tok::Plus);
                i += 1;
            }
            '%' => {
                push!(Tok::Percent);
                i += 1;
            }
            '/' => {
                push!(Tok::Slash);
                i += 1;
            }
            '*' => {
                push!(Tok::Star);
                i += 1;
            }
            '-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    push!(Tok::Arrow);
                    i += 2;
                } else {
                    push!(Tok::Minus);
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::EqEq);
                    i += 2;
                } else {
                    push!(Tok::Assign);
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::NotEq);
                    i += 2;
                } else {
                    push!(Tok::Bang);
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::Le);
                    i += 2;
                } else {
                    push!(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::Ge);
                    i += 2;
                } else {
                    push!(Tok::Gt);
                    i += 1;
                }
            }
            '&' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'&' {
                    push!(Tok::AmpAmp);
                    i += 2;
                } else {
                    push!(Tok::Amp);
                    i += 1;
                }
            }
            '|' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'|' {
                    push!(Tok::PipePipe);
                    i += 2;
                } else {
                    return Err(LexError {
                        line,
                        message: "single `|` is not an operator".into(),
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let n: i64 = text.parse().map_err(|_| LexError {
                    line,
                    message: format!("integer literal `{text}` out of range"),
                })?;
                push!(Tok::Int(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                let tok = match word {
                    "fn" => Tok::Fn,
                    "let" => Tok::Let,
                    "global" => Tok::Global,
                    "struct" => Tok::Struct,
                    "atomic" => Tok::Atomic,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "return" => Tok::Return,
                    "break" => Tok::Break,
                    "continue" => Tok::Continue,
                    "null" => Tok::Null,
                    "new" => Tok::New,
                    _ => Tok::Ident(word.to_owned()),
                };
                push!(tok);
            }
            other => {
                return Err(LexError {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    toks.push(Spanned {
        tok: Tok::Eof,
        line,
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            toks("a -> b == c != d <= e >= f && g || !h"),
            vec![
                Tok::Ident("a".into()),
                Tok::Arrow,
                Tok::Ident("b".into()),
                Tok::EqEq,
                Tok::Ident("c".into()),
                Tok::NotEq,
                Tok::Ident("d".into()),
                Tok::Le,
                Tok::Ident("e".into()),
                Tok::Ge,
                Tok::Ident("f".into()),
                Tok::AmpAmp,
                Tok::Ident("g".into()),
                Tok::PipePipe,
                Tok::Bang,
                Tok::Ident("h".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_keywords_and_ints() {
        assert_eq!(
            toks("fn f() { let x = 42; }"),
            vec![
                Tok::Fn,
                Tok::Ident("f".into()),
                Tok::LParen,
                Tok::RParen,
                Tok::LBrace,
                Tok::Let,
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Int(42),
                Tok::Semi,
                Tok::RBrace,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let ts = lex("// c1\nx /* multi\nline */ y").unwrap();
        assert_eq!(ts[0].tok, Tok::Ident("x".into()));
        assert_eq!(ts[0].line, 2);
        assert_eq!(ts[1].tok, Tok::Ident("y".into()));
        assert_eq!(ts[1].line, 3);
    }

    #[test]
    fn rejects_unknown_chars() {
        assert!(lex("x $ y").is_err());
        assert!(lex("/* open").is_err());
        assert!(lex("a | b").is_err());
    }

    #[test]
    fn arrow_vs_minus() {
        assert_eq!(
            toks("a - b -> c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Minus,
                Tok::Ident("b".into()),
                Tok::Arrow,
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }
}
