//! Human-readable rendering of IR programs, lock path expressions, and
//! lock specs — used for diagnostics, examples, and golden tests.

use crate::ir::*;
use std::fmt;
use std::fmt::Write as _;

impl Program {
    /// Renders a lock path expression as a C-like address expression,
    /// e.g. `&((*to).head)` for `to ➝ Deref ➝ Field(head)`.
    pub fn render_path(&self, path: &PathExpr) -> String {
        let mut lv = self.var_name(path.base).to_owned();
        for op in &path.ops {
            match op {
                PathOp::Deref => lv = format!("(*{lv})"),
                PathOp::Field(f) => {
                    let _ = write!(lv, ".{}", self.field_name(*f));
                }
                PathOp::Index(v) => {
                    let _ = write!(lv, "[{}]", self.var_name(*v));
                }
            }
        }
        format!("&{lv}")
    }

    /// Renders a lock spec, e.g. `fine[rw] &((*to).head) in P3`.
    pub fn render_lock(&self, spec: &LockSpec) -> String {
        match spec {
            LockSpec::Global => "GLOBAL[rw]".to_owned(),
            LockSpec::Coarse { pts, eff } => format!("coarse[{eff}] P{pts}"),
            LockSpec::Fine { path, pts, eff } => {
                format!("fine[{eff}] {} in P{pts}", self.render_path(path))
            }
        }
    }

    /// Renders one instruction.
    pub fn render_instr(&self, ins: &Instr) -> String {
        let v = |x: &VarId| self.var_name(*x).to_owned();
        match ins {
            Instr::Assign(x, rv) => format!("{} = {}", v(x), self.render_rvalue(rv)),
            Instr::Store(x, y) => format!("*{} = {}", v(x), v(y)),
            Instr::EnterAtomic(s) => format!("enter_atomic #{}", s.0),
            Instr::ExitAtomic(s) => format!("exit_atomic #{}", s.0),
            Instr::AcquireAll(s, locks) => {
                let body: Vec<String> = locks.iter().map(|l| self.render_lock(l)).collect();
                format!("acquireAll #{} {{{}}}", s.0, body.join(", "))
            }
            Instr::ReleaseAll(s) => format!("releaseAll #{}", s.0),
            Instr::Jump(t) => format!("jump {t}"),
            Instr::Branch(c, t, e) => format!("branch {} ? {t} : {e}", v(c)),
            Instr::Ret => "ret".to_owned(),
            Instr::Nop => "nop".to_owned(),
        }
    }

    fn render_rvalue(&self, rv: &Rvalue) -> String {
        let v = |x: &VarId| self.var_name(*x).to_owned();
        match rv {
            Rvalue::Copy(y) => v(y),
            Rvalue::AddrOf(y) => format!("&{}", v(y)),
            Rvalue::Load(y) => format!("*{}", v(y)),
            Rvalue::FieldAddr(y, f) => format!("{} + {}", v(y), self.field_name(*f)),
            Rvalue::DynAddr(y, z) => format!("{} +[{}]", v(y), v(z)),
            Rvalue::Alloc(n) => format!("new({n})"),
            Rvalue::AllocDyn(z) => format!("new[{}]", v(z)),
            Rvalue::Null => "null".to_owned(),
            Rvalue::ConstInt(c) => format!("{c}"),
            Rvalue::Arith(op, a, b) => format!("{} {} {}", v(a), arith_sym(*op), v(b)),
            Rvalue::Cmp(op, a, b) => format!("{} {} {}", v(a), cmp_sym(*op), v(b)),
            Rvalue::Call(f, args) => {
                let args: Vec<String> = args.iter().map(v).collect();
                format!("{}({})", self.fn_name(*f), args.join(", "))
            }
            Rvalue::Intrinsic(i, args) => {
                let args: Vec<String> = args.iter().map(v).collect();
                format!("{}({})", intrinsic_name(*i), args.join(", "))
            }
        }
    }
}

fn arith_sym(op: ArithOp) -> &'static str {
    match op {
        ArithOp::Add => "+",
        ArithOp::Sub => "-",
        ArithOp::Mul => "*",
        ArithOp::Div => "/",
        ArithOp::Rem => "%",
        ArithOp::And => "&",
        ArithOp::Or => "|",
        ArithOp::Xor => "^",
        ArithOp::Shl => "<<",
        ArithOp::Shr => ">>",
    }
}

fn cmp_sym(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "==",
        CmpOp::Ne => "!=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

fn intrinsic_name(i: Intrinsic) -> &'static str {
    match i {
        Intrinsic::Nops => "nops",
        Intrinsic::Rand => "rand",
        Intrinsic::Tid => "tid",
        Intrinsic::Print => "print",
        Intrinsic::Assert => "assert",
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for func in &self.functions {
            let params: Vec<&str> = func.params.iter().map(|p| self.var_name(*p)).collect();
            writeln!(f, "fn {}({}) {{", self.fn_name(func.id), params.join(", "))?;
            for (i, ins) in func.body.iter().enumerate() {
                writeln!(f, "  {i:4}: {}", self.render_instr(ins))?;
            }
            writeln!(f, "}}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::compile;

    #[test]
    fn renders_paths_like_the_paper() {
        let p = compile("struct list { head; } fn f(to) { let x = to->head; }").unwrap();
        let to = p.functions[0].params[0];
        let head = FieldId(
            p.fields
                .iter()
                .position(|fi| p.interner.resolve(fi.name) == "head")
                .unwrap() as u32,
        );
        let path = PathExpr {
            base: to,
            ops: vec![PathOp::Deref, PathOp::Field(head)],
        };
        assert_eq!(p.render_path(&path), "&(*to).head");
        assert_eq!(p.render_path(&PathExpr::var(to)), "&to");
    }

    #[test]
    fn display_is_nonempty_and_contains_markers() {
        let p = compile("fn main() { atomic { let x = new(2); } }").unwrap();
        let text = p.to_string();
        assert!(text.contains("enter_atomic #0"));
        assert!(text.contains("new(2)"));
        assert!(text.contains("fn main()"));
    }

    #[test]
    fn renders_lock_specs() {
        let p = compile("fn main(x) { let y = x; }").unwrap();
        let x = p.functions[0].params[0];
        assert_eq!(p.render_lock(&LockSpec::Global), "GLOBAL[rw]");
        assert_eq!(
            p.render_lock(&LockSpec::Coarse {
                pts: 3,
                eff: Eff::Ro
            }),
            "coarse[ro] P3"
        );
        let fine = LockSpec::Fine {
            path: PathExpr::var(x),
            pts: 1,
            eff: Eff::Rw,
        };
        assert_eq!(p.render_lock(&fine), "fine[rw] &x in P1");
    }
}
