//! Property test: `parse(module.to_source()) == module` for randomly
//! generated surface ASTs — the parser and the emitter agree on the
//! whole grammar.

use lir::ast::*;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "a", "b", "c", "foo", "bar", "baz_1", "cur", "prev", "x9", "tmp",
    ])
    .prop_map(str::to_owned)
}

fn field_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["f0", "f1", "next", "data", "head"]).prop_map(str::to_owned)
}

fn binop() -> impl Strategy<Value = BinKind> {
    prop::sample::select(vec![
        BinKind::Add,
        BinKind::Sub,
        BinKind::Mul,
        BinKind::Div,
        BinKind::Rem,
        BinKind::Eq,
        BinKind::Ne,
        BinKind::Lt,
        BinKind::Le,
        BinKind::Gt,
        BinKind::Ge,
        BinKind::And,
        BinKind::Or,
    ])
}

/// Expressions the parser accepts on the left of `=` or under `&`.
fn lvalue(expr: impl Strategy<Value = SExpr> + Clone + 'static) -> BoxedStrategy<SExpr> {
    prop_oneof![
        ident().prop_map(SExpr::Var),
        expr.clone().prop_map(|e| SExpr::Deref(Box::new(e))),
        (expr.clone(), field_name()).prop_map(|(e, f)| SExpr::Arrow(Box::new(e), f)),
        (expr.clone(), expr).prop_map(|(e, i)| SExpr::Index(Box::new(e), Box::new(i))),
    ]
    .boxed()
}

fn expr() -> BoxedStrategy<SExpr> {
    let leaf = prop_oneof![
        ident().prop_map(SExpr::Var),
        (0i64..10_000).prop_map(SExpr::Int),
        Just(SExpr::Null),
        ident().prop_map(SExpr::NewStruct),
    ];
    leaf.prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| SExpr::Deref(Box::new(e))),
            lvalue(inner.clone()).prop_map(|lv| SExpr::AddrOf(Box::new(lv))),
            (inner.clone(), field_name()).prop_map(|(e, f)| SExpr::Arrow(Box::new(e), f)),
            (inner.clone(), inner.clone())
                .prop_map(|(e, i)| SExpr::Index(Box::new(e), Box::new(i))),
            inner.clone().prop_map(|n| SExpr::NewArray(Box::new(n))),
            (ident(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(f, args)| SExpr::Call(f, args)),
            (binop(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| SExpr::Binop(
                op,
                Box::new(a),
                Box::new(b)
            )),
            inner.clone().prop_map(|e| SExpr::Not(Box::new(e))),
            inner.prop_map(|e| SExpr::Neg(Box::new(e))),
        ]
    })
    .boxed()
}

fn stmt() -> BoxedStrategy<SStmt> {
    let simple = prop_oneof![
        (ident(), prop::option::of(expr())).prop_map(|(n, e)| SStmt::Let(n, e)),
        (lvalue(expr()), expr()).prop_map(|(lv, e)| SStmt::Assign(lv, e)),
        (ident(), prop::collection::vec(expr(), 0..3))
            .prop_map(|(f, args)| SStmt::Expr(SExpr::Call(f, args))),
        prop::option::of(expr()).prop_map(SStmt::Return),
        Just(SStmt::Break),
        Just(SStmt::Continue),
    ];
    simple
        .prop_recursive(3, 16, 3, |inner| {
            let body = prop::collection::vec(inner.clone(), 0..3);
            prop_oneof![
                body.clone().prop_map(SStmt::Atomic),
                (expr(), body.clone(), body.clone()).prop_map(|(c, t, e)| SStmt::If(c, t, e)),
                (expr(), body.clone()).prop_map(|(c, b)| SStmt::While(c, b)),
                body.prop_map(SStmt::Block),
            ]
        })
        .boxed()
}

fn module() -> impl Strategy<Value = SModule> {
    (
        prop::collection::vec(
            (ident(), prop::collection::vec(field_name(), 1..3)).prop_map(|(name, mut fields)| {
                fields.dedup();
                SStruct { name, fields }
            }),
            0..2,
        ),
        prop::collection::vec(ident(), 0..3),
        prop::collection::vec(
            (
                ident(),
                prop::collection::vec(ident(), 0..3),
                prop::collection::vec(stmt(), 0..5),
            )
                .prop_map(|(name, params, body)| SFunc {
                    name,
                    params,
                    body,
                    line: 0,
                }),
            1..3,
        ),
    )
        .prop_map(|(structs, mut globals, funcs)| {
            globals.dedup();
            SModule {
                structs,
                globals,
                funcs,
            }
        })
}

/// Erase source-position metadata before comparing.
fn strip_lines(mut m: SModule) -> SModule {
    for f in &mut m.funcs {
        f.line = 0;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn parse_emit_round_trip(m in module()) {
        let src = m.to_source();
        let reparsed = lir::parser::parse(&src)
            .unwrap_or_else(|e| panic!("emitted source failed to parse: {e}\n{src}"));
        prop_assert_eq!(strip_lines(reparsed), m, "round-trip mismatch for\n{}", src);
    }
}
