//! Regenerates the recorded traces under `tests/corpus/` from their own
//! embedded run configurations.
//!
//! Each corpus file is self-describing (`run.*` metadata), so this tool
//! re-records every run with the current toolchain and rewrites the
//! file with the fresh canonical JSON. Run it after an *intentional*
//! trace-format or event-stream change (a new event kind, a cost-model
//! change); the `corpus_replay` test will then pin the new bytes.
//!
//! ```text
//! cargo run --release --example regen_corpus
//! ```

use atomic_lock_inference::replay;

fn main() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/corpus exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    for path in files {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap();
        let old = trace::Trace::from_json(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let rec = replay::replay(&old).unwrap_or_else(|e| panic!("{name}: {e}"));
        let json = rec.trace.to_json();
        let changed = json != text;
        std::fs::write(&path, &json).unwrap();
        println!(
            "{name}: {} events, digest {} ({})",
            rec.trace.events.len(),
            rec.trace.digest(),
            if changed { "UPDATED" } else { "unchanged" }
        );
    }
}
