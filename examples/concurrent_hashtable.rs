//! A miniature Table 2 row: the `hashtable-2` micro-benchmark under all
//! four configurations, with virtual-time makespans — showing the
//! paper's headline result that a put protected by one fine-grain
//! bucket lock runs twice as fast as under coarse locks.
//!
//! ```text
//! cargo run --release --example concurrent_hashtable
//! ```

use atomic_lock_inference::{interp, lockinfer, pointsto, workloads};
use interp::{ExecMode, Machine, Options};
use std::sync::Arc;
use workloads::Contention;

fn run(k: usize, mode: ExecMode, threads: usize) -> (f64, u64) {
    let spec = workloads::micro::hashtable2(Contention::High, 4_000, 200);
    let program = lir::compile(&spec.source).expect("compiles");
    let pt = Arc::new(pointsto::PointsTo::analyze(&program));
    let cfg = lockscheme::SchemeConfig::full(k, program.elem_field_opt());
    let analysis = lockinfer::analyze_program(&program, &pt, cfg);
    let transformed = Arc::new(lockinfer::transform(&program, &analysis));
    let machine = Machine::new(
        transformed,
        pt,
        mode,
        Options {
            heap_cells: spec.heap_cells,
            ..Options::default()
        },
    );
    let (init_fn, init_args) = &spec.init;
    machine.run_named(init_fn, init_args).expect("init");
    let (worker_fn, worker_args) = &spec.worker;
    let (_, makespan) = machine
        .run_threads_virtual(worker_fn, threads, |_| worker_args.clone())
        .expect("workers");
    machine.run_named("check", &[]).expect("invariants hold");
    (makespan as f64 * 1e-9, machine.stm_stats().aborts)
}

fn main() {
    println!("hashtable-2, high contention (puts 4x), 8 threads, virtual time");
    println!(
        "{:<22} {:>12} {:>12}",
        "configuration", "seconds", "STM aborts"
    );
    let (g, _) = run(0, ExecMode::Global, 8);
    println!("{:<22} {:>12.4} {:>12}", "global lock", g, "-");
    let (c, _) = run(0, ExecMode::MultiGrain, 8);
    println!("{:<22} {:>12.4} {:>12}", "coarse (k=0)", c, "-");
    let (f, _) = run(9, ExecMode::MultiGrain, 8);
    println!("{:<22} {:>12.4} {:>12}", "fine+coarse (k=9)", f, "-");
    let (s, aborts) = run(9, ExecMode::Stm, 8);
    println!("{:<22} {:>12.4} {:>12}", "TL2 STM", s, aborts);
    println!();
    println!(
        "fine-grain speedup over coarse: {:.1}x (paper §6.3: \"fine-grain locks \
         halve the execution time of coarse-grain locks\")",
        c / f
    );
    assert!(f < c, "fine locks beat coarse on single-bucket puts");
}
