//! Theorem 1, empirically: run a workload in Validate mode — every
//! heap access inside an atomic section is checked against the
//! concrete denotations of the locks held — then sabotage the
//! transformation and watch the checker flag the hole.
//!
//! ```text
//! cargo run --example validate_soundness
//! ```

use atomic_lock_inference::{interp, lockinfer, pointsto, workloads};
use interp::{ExecMode, InterpError, Machine, Options};
use lir::{Instr, LockSpec};
use std::sync::Arc;
use workloads::Contention;

fn main() {
    let spec = workloads::micro::list(Contention::High, 300, 0);
    let program = lir::compile(&spec.source).expect("compiles");
    let pt = Arc::new(pointsto::PointsTo::analyze(&program));
    let cfg = lockscheme::SchemeConfig::full(9, program.elem_field_opt());
    let analysis = lockinfer::analyze_program(&program, &pt, cfg);
    let transformed = lockinfer::transform(&program, &analysis);

    // 1. The inferred locks pass the Theorem-1 checker.
    let machine = Machine::new(
        Arc::new(transformed.clone()),
        Arc::clone(&pt),
        ExecMode::Validate,
        Options::default(),
    );
    let (init_fn, init_args) = &spec.init;
    machine
        .run_named(init_fn, init_args)
        .expect("init validates");
    let (worker_fn, worker_args) = &spec.worker;
    machine
        .run_threads(worker_fn, 4, |_| worker_args.clone())
        .expect("workers validate");
    machine.run_named("check", &[]).expect("invariants hold");
    println!("inferred locks cover every access inside every section ✓");

    // 2. Sabotage: drop the coarse locks from one acquireAll and run
    //    the same workload — the checker reports the first unprotected
    //    access with its location.
    let mut broken = transformed;
    let mut removed = 0;
    'outer: for func in &mut broken.functions {
        for ins in &mut func.body {
            if let Instr::AcquireAll(_, specs) = ins {
                let before = specs.len();
                specs.retain(|s| matches!(s, LockSpec::Fine { .. }));
                removed = before - specs.len();
                if removed > 0 {
                    break 'outer;
                }
            }
        }
    }
    println!("sabotaged the first section: removed {removed} coarse lock(s)");
    let machine = Machine::new(Arc::new(broken), pt, ExecMode::Validate, Options::default());
    // The prefill already exercises the sabotaged section, so the very
    // first run trips the checker.
    let err = machine
        .run_named(init_fn, init_args)
        .err()
        .or_else(|| {
            machine
                .run_threads(worker_fn, 1, |_| worker_args.clone())
                .err()
        })
        .expect("the checker must catch the hole");
    match &err {
        InterpError::Unprotected {
            func,
            pc,
            addr,
            write,
            section,
        } => {
            println!(
                "checker caught it: unprotected {} of cell {addr} in `{func}` \
                 at instruction {pc} (section #{})",
                if *write { "write" } else { "read" },
                section.0
            );
        }
        other => println!("checker reported: {other}"),
    }
}
