//! The paper's running example (Figure 1): `move` between two linked
//! lists — the classic case where naive fine-grain locking deadlocks
//! (`move(l1,l2) ∥ move(l2,l1)`) and the inferred multi-grain locks
//! don't.
//!
//! Prints the Figure 1(c) lock set — fine locks on `&(to->head)` and
//! `&(from->head)` plus the coarse element lock `E` — then runs the
//! symmetric movers under all four execution disciplines.
//!
//! ```text
//! cargo run --example move_lists
//! ```

use atomic_lock_inference::{interp, lockinfer, pointsto};
use interp::{ExecMode, Machine, Options};
use std::sync::Arc;

const SRC: &str = r#"
    struct elem { next; data; }
    struct list { head; }
    global l1, l2;

    fn setup(n) {
        l1 = new list;
        l2 = new list;
        let i = 0;
        while (i < n) {
            let e = new elem;
            e->data = i;
            e->next = l1->head;
            l1->head = e;
            i = i + 1;
        }
    }

    // Figure 1(a), verbatim modulo syntax.
    fn move_(from, to) {
        atomic {
            let x = to->head;
            let y = from->head;
            from->head = null;
            if (x == null) {
                to->head = y;
            } else {
                while (x->next != null) { x = x->next; }
                x->next = y;
            }
        }
    }

    fn mover(rounds) {
        let i = 0;
        while (i < rounds) {
            if (tid() % 2 == 0) { move_(l1, l2); } else { move_(l2, l1); }
            i = i + 1;
        }
        return 0;
    }

    fn count(l) {
        let n = 0;
        let e = l->head;
        while (e != null) { n = n + 1; e = e->next; }
        return n;
    }

    fn total() { return count(l1) + count(l2); }
"#;

fn main() {
    let (program, analysis, transformed) =
        lockinfer::compile_with_locks(SRC, 3).expect("figure 1 compiles");

    println!("=== Figure 1(c): locks inferred for move_'s atomic section ===");
    print!("{}", analysis.render(&program));
    println!();
    println!("(compare the paper: fine locks on to->head and from->head, and");
    println!(" one coarse lock E over all list elements — the unbounded");
    println!(" traversal cannot be protected by finitely many expressions)");
    println!();

    let elements = 40;
    for mode in [
        ExecMode::Global,
        ExecMode::MultiGrain,
        ExecMode::Stm,
        ExecMode::Validate,
    ] {
        let pt = Arc::new(pointsto::PointsTo::analyze(&program));
        let machine = Machine::new(Arc::new(transformed.clone()), pt, mode, Options::default());
        machine.run_named("setup", &[elements]).expect("setup");
        machine
            .run_threads("mover", 4, |_| vec![50])
            .expect("movers");
        let total = machine.run_named("total", &[]).expect("total");
        println!(
            "{mode:?}: 4 symmetric movers × 50 rounds — {total} elements survive \
             (expected {elements}) {}",
            if total == elements { "✓" } else { "✗" }
        );
        assert_eq!(total, elements);
    }
    println!();
    println!("No deadlock, no lost elements: the acquireAll protocol orders");
    println!("all locks globally, so the symmetric movers cannot interlock the");
    println!("way Figure 1(b)'s incremental fine-grain locking does.");
}
