//! Quickstart: compile a program with atomic sections, inspect the
//! inferred locks, and run the transformed program.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use atomic_lock_inference::{interp, lockinfer};
use interp::{ExecMode, Machine, Options};
use std::sync::Arc;

fn main() {
    let src = r#"
        struct account { balance; }
        global bank, total_moves;

        fn init(n) {
            bank = new(n);
            let i = 0;
            while (i < n) {
                let a = new account;
                a->balance = 100;
                bank[i] = a;
                i = i + 1;
            }
        }

        fn transfer(from, to, amount) {
            // The inference protects exactly the two accounts touched
            // (fine locks on bank[from] / bank[to] — evaluable at the
            // section entry) plus the account cells, instead of locking
            // the whole bank.
            atomic {
                let a = bank[from];
                let b = bank[to];
                if (a->balance >= amount) {
                    a->balance = a->balance - amount;
                    b->balance = b->balance + amount;
                }
                total_moves = total_moves + 1;
            }
        }

        fn sum(n) {
            let s = 0;
            let i = 0;
            while (i < n) {
                let a = bank[i];
                s = s + a->balance;
                i = i + 1;
            }
            return s;
        }

        fn worker(ops, n) {
            let i = 0;
            while (i < ops) {
                transfer(rand(n), rand(n), 1 + rand(5));
                i = i + 1;
            }
            return 0;
        }
    "#;

    // 1. Compile: parse, lower, run Steensgaard, infer locks at k = 9,
    //    and rewrite atomic sections to acquireAll/releaseAll.
    let (program, analysis, transformed) =
        lockinfer::compile_with_locks(src, 9).expect("example source compiles");

    println!("=== Inferred locks per atomic section ===");
    print!("{}", analysis.render(&program));
    println!();
    println!("Lock distribution: {}", analysis.lock_counts());
    println!();

    // 2. Execute the transformed program with the multi-granularity
    //    lock runtime, 8 threads.
    let pt = Arc::new(pointsto::PointsTo::analyze(&program));
    let machine = Machine::new(
        Arc::new(transformed),
        pt,
        ExecMode::MultiGrain,
        Options::default(),
    );
    let accounts = 64;
    machine.run_named("init", &[accounts]).expect("init");
    machine
        .run_threads("worker", 8, |_| vec![2_000, accounts])
        .expect("workers");
    let total = machine.run_named("sum", &[accounts]).expect("sum");
    println!("=== Run ===");
    println!("after 16,000 concurrent transfers, total balance = {total}");
    assert_eq!(total, accounts * 100, "money is conserved");
    println!("money conserved ✓ (atomic sections held)");
}
