//! The abstract-lock-scheme framework of §3.3, hands on: build the
//! lock `ê` protecting an expression under each example scheme and
//! under their Cartesian product, and check the lattice relations.
//!
//! ```text
//! cargo run --example scheme_playground
//! ```

use atomic_lock_inference::{lockscheme, pointsto};
use lir::{Eff, PathExpr, PathOp};
use lockscheme::{EffScheme, FieldScheme, KExprScheme, Product, PtsScheme, Scheme};

fn main() {
    let src = r#"
        struct elem { next; data; }
        struct list { head; }
        fn main(from, to) {
            atomic {
                let x = to->head;
                while (x != null) { x = x->next; }
                from->head = null;
            }
        }
    "#;
    let program = lir::compile(src).expect("compiles");
    let pt = pointsto::PointsTo::analyze(&program);

    let to = program.functions[0].params[1];
    let head = lir::FieldId(
        program
            .fields
            .iter()
            .position(|f| program.interner.resolve(f.name) == "head")
            .expect("field head") as u32,
    );
    let next = lir::FieldId(
        program
            .fields
            .iter()
            .position(|f| program.interner.resolve(f.name) == "next")
            .expect("field next") as u32,
    );

    // Expressions from the example: &to, to->head's cell, and a
    // two-level chain into the elements.
    let exprs = [
        ("x̄ = &to", PathExpr::var(to)),
        (
            "&(to->head)",
            PathExpr {
                base: to,
                ops: vec![PathOp::Deref, PathOp::Field(head)],
            },
        ),
        (
            "&(to->head->next)",
            PathExpr {
                base: to,
                ops: vec![
                    PathOp::Deref,
                    PathOp::Field(head),
                    PathOp::Deref,
                    PathOp::Field(next),
                ],
            },
        ),
    ];

    println!("=== Σ_k (k-limited expression locks) ===");
    for k in [1usize, 3] {
        let s = KExprScheme { k };
        for (name, e) in &exprs {
            let lock = s.path(e, Eff::Rw);
            println!(
                "  k={k}: {name:<20} -> {}",
                match &lock {
                    Some(p) => program.render_path(p),
                    None => "⊤ (length exceeds k)".into(),
                }
            );
        }
    }

    println!();
    println!("=== Σ≡ (Steensgaard points-to locks) ===");
    let s = PtsScheme { pt: &pt };
    for (name, e) in &exprs {
        println!("  {name:<22} -> {:?}", s.path(e, Eff::Rw));
    }
    println!("  (the two heads land in one class; the chain follows the edge)");

    println!();
    println!("=== Σ_ε (effect locks) and Σ_i (field locks) ===");
    for (name, e) in &exprs {
        println!(
            "  {name:<22} -> eff {:?}, fields {:?}",
            EffScheme.path(e, Eff::Ro),
            FieldScheme.path(e, Eff::Ro)
        );
    }

    println!();
    println!("=== Product Σ_3 × Σ≡ × Σ_ε (the paper's instantiation) ===");
    let s = Product(
        KExprScheme { k: 3 },
        Product(PtsScheme { pt: &pt }, EffScheme),
    );
    for (name, e) in &exprs {
        let (expr, (class, eff)) = s.path(e, Eff::Ro);
        println!(
            "  {name:<22} -> ({}, {:?}, {:?})",
            match &expr {
                Some(p) => program.render_path(p),
                None => "⊤".into(),
            },
            class,
            eff
        );
    }

    // Spot-check the ordering laws the soundness proof leans on.
    let fine = s.path(&exprs[1].1, Eff::Ro);
    let coarse = s.top();
    assert!(s.leq(&fine, &coarse), "every lock is below ⊤");
    assert_eq!(s.join(&fine, &fine), fine, "join is idempotent");
    println!();
    println!("lattice laws hold ✓ (≤ reflexive/antisymmetric, ⊤ greatest, ⊔ = lub)");
}
